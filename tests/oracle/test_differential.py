"""Randomized differential testing of the shared batch path.

Seeded random (graph, batch) cases — batches with deliberately
overlapping subtrees — cross-check four evaluators for *exact*
answer-set agreement:

* ``QuerySession.evaluate_many`` (the shared-plan DAG path),
* per-query ``GTEA.evaluate`` (compile → execute, no sharing),
* per-query ``GTEA(adaptive=True).evaluate`` (the operator pipeline
  with runtime prune reordering and the backbone-empty early exit),
* ``evaluate_naive`` (the Section-2 semantics oracle).

The default run covers 200 cases (~1000 query evaluations) on small
graphs; the ``slow`` sweep widens graphs, batch sizes and formula
density.  This harness is what caught the leaf-``fext`` minimization
bug fixed alongside it (a rewrite can leave a constant-FALSE structural
predicate on a leaf, which the pruning phases used to skip).
"""

import random

import pytest

from repro.datasets import random_labeled_graph, random_query_batch
from repro.engine import GTEA, QuerySession
from repro.query import evaluate_naive

#: (first seed, number of seeds) chunks covering 200 default cases.
DEFAULT_CHUNKS = [(start, 25) for start in range(0, 200, 25)]


def run_differential_cases(
    seeds,
    *,
    node_range=(8, 14),
    batch_range=(4, 7),
    size_range=(2, 5),
    overlap=0.6,
) -> dict:
    """Run one (graph, batch) case per seed; returns coverage counters."""
    coverage = {"cases": 0, "queries": 0, "nonempty": 0, "shared": 0}
    for seed in seeds:
        rng = random.Random(seed)
        graph = random_labeled_graph(rng.randint(*node_range), rng)
        batch = random_query_batch(
            graph,
            rng,
            batch_size=rng.randint(*batch_range),
            size_range=size_range,
            overlap=overlap,
        )
        session = QuerySession(graph)
        outcome = session.evaluate_many(batch)
        engine = GTEA(graph)
        adaptive = GTEA(graph, adaptive=True)
        for position, (query, answer) in enumerate(zip(batch, outcome.results)):
            expected = evaluate_naive(query, graph)
            assert answer == expected, (
                f"seed {seed} query {position}: shared batch path disagrees "
                f"with evaluate_naive"
            )
            assert engine.evaluate(query) == expected, (
                f"seed {seed} query {position}: GTEA disagrees with evaluate_naive"
            )
            assert adaptive.evaluate(query) == expected, (
                f"seed {seed} query {position}: adaptive executor disagrees "
                f"with evaluate_naive"
            )
            coverage["queries"] += 1
            coverage["nonempty"] += bool(expected)
        coverage["shared"] += outcome.stats.batch_shared_subtrees
        coverage["cases"] += 1
    return coverage


@pytest.mark.parametrize("start,count", DEFAULT_CHUNKS)
def test_differential_agreement(start, count):
    coverage = run_differential_cases(range(start, start + count))
    assert coverage["cases"] == count
    # The harness must actually exercise both interesting regimes:
    # nonempty answers and genuine subtree sharing.
    assert coverage["nonempty"] > 0
    assert coverage["shared"] > 0


def test_differential_agreement_share_disabled_matches_shared():
    """The per-query path and the shared path agree case by case."""
    for seed in range(20):
        rng = random.Random(seed)
        graph = random_labeled_graph(rng.randint(8, 14), rng)
        batch = random_query_batch(graph, rng, batch_size=5, overlap=0.7)
        shared = QuerySession(graph).evaluate_many(batch)
        isolated = QuerySession(graph).evaluate_many(batch, share=False)
        assert shared.results == isolated.results
        assert shared.fingerprints == isolated.fingerprints


@pytest.mark.slow
@pytest.mark.parametrize("start", range(1000, 1200, 50))
def test_differential_agreement_wide_sweep(start):
    """Larger graphs, denser batches, heavier overlap (the slow sweep)."""
    coverage = run_differential_cases(
        range(start, start + 50),
        node_range=(12, 24),
        batch_range=(6, 12),
        size_range=(2, 7),
        overlap=0.75,
    )
    assert coverage["cases"] == 50
    assert coverage["nonempty"] > 0
    assert coverage["shared"] > 0
