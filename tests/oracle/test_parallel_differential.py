"""Randomized differential testing of sharded, concurrent execution.

Seeded random (graph, workload) cases cross-check the sharded executor
of :mod:`repro.engine.parallel` three ways:

* **semantics** — sharded answers must equal ``evaluate_naive`` (the
  Section-2 oracle) and the serial engine exactly;
* **determinism** — a sharded run (several workers, several shards)
  must be *byte-identical* to a single-shard run: same answers, same
  per-node survivor sets, same prune-op counts.  This is the contract
  ``repro.graph.partition.merge_survivors`` (sorted merge) exists for;
* **batch frontier** — ``evaluate_many`` through the parallel DAG
  frontier must match the serial shared path query by query.

The default sweep uses the ``"serial"`` backend — the same dispatch,
sharding and merge machinery with inline futures — because it is
deterministic under pytest and visible to coverage; the ``slow`` sweep
re-runs a slice on a real thread pool.
"""

import random

import pytest

from repro.datasets import random_labeled_graph, random_query_batch
from repro.engine import QuerySession
from repro.engine.parallel import ParallelOptions
from repro.graph import DataGraph
from repro.query import evaluate_naive
from repro.query.attribute import AttributePredicate
from repro.query.builder import QueryBuilder

#: (first seed, number of seeds) chunks covering the default cases.
DEFAULT_CHUNKS = [(start, 20) for start in range(400, 480, 20)]


def parallel_session(graph, workers, shards, backend="serial"):
    options = ParallelOptions(workers=workers, backend=backend, shards=shards, min_shard_size=1)
    return QuerySession(graph, result_cache_size=0, parallel=options)


def run_parallel_differential_cases(seeds, *, backend="serial") -> dict:
    """One (graph, batch) case per seed; returns coverage counters."""
    coverage = {"cases": 0, "queries": 0, "nonempty": 0, "sharded_tasks": 0}
    for seed in seeds:
        rng = random.Random(seed)
        graph = random_labeled_graph(rng.randint(8, 16), rng)
        batch = random_query_batch(graph, rng, batch_size=rng.randint(3, 6), overlap=0.6)
        serial = QuerySession(graph, result_cache_size=0)
        single = parallel_session(graph, workers=1, shards=1, backend=backend)
        sharded = parallel_session(graph, workers=3, shards=3, backend=backend)

        # Per-query path: naive oracle + serial session + byte identity.
        for position, query in enumerate(batch):
            expected = evaluate_naive(query, graph)
            assert serial.evaluate(query) == expected, (
                f"seed {seed} query {position}: serial session disagrees with evaluate_naive"
            )
            single_answer, single_stats = single.evaluate_with_stats(query)
            sharded_answer, sharded_stats = sharded.evaluate_with_stats(query)
            assert sharded_answer == expected, (
                f"seed {seed} query {position}: sharded execution disagrees with evaluate_naive"
            )
            assert single_answer == expected
            assert (
                sharded_stats.candidates_after_downward == single_stats.candidates_after_downward
            ), (
                f"seed {seed} query {position}: sharded survivor sets are "
                f"not byte-identical to the single-shard run"
            )
            assert (
                sharded_stats.candidates_after_upward == single_stats.candidates_after_upward
            ), (
                f"seed {seed} query {position}: sharded upward survivor sets "
                f"are not byte-identical to the single-shard run"
            )
            assert sharded_stats.downward_prune_ops == single_stats.downward_prune_ops
            coverage["queries"] += 1
            coverage["nonempty"] += bool(expected)
            coverage["sharded_tasks"] += sharded_stats.parallel_shard_tasks

        # Batch path: the DAG frontier vs the serial shared executor.
        serial_batch = serial.evaluate_many(batch)
        single_batch = single.evaluate_many(batch)
        sharded_batch = sharded.evaluate_many(batch)
        assert sharded_batch.results == serial_batch.results, (
            f"seed {seed}: parallel batch frontier disagrees with the serial shared path"
        )
        assert sharded_batch.results == single_batch.results
        pairs = zip(sharded_batch.per_query, single_batch.per_query)
        for position, (got, want) in enumerate(pairs):
            assert got.candidates_after_downward == want.candidates_after_downward, (
                f"seed {seed} query {position}: sharded batch survivor sets "
                f"are not byte-identical to the single-shard batch run"
            )
        coverage["cases"] += 1
    return coverage


@pytest.mark.parametrize("start,count", DEFAULT_CHUNKS)
def test_parallel_differential_agreement(start, count):
    coverage = run_parallel_differential_cases(range(start, start + count))
    assert coverage["cases"] == count
    # The sweep must exercise the interesting regimes: nonempty answers
    # and genuinely sharded dispatch (multi-task prunes).
    assert coverage["nonempty"] > 0
    assert coverage["sharded_tasks"] > coverage["queries"]


def skewed_candidate_graph(seed: int, nodes: int = 36) -> DataGraph:
    """A graph whose label-``"a"`` candidates cluster in one id range.

    The first third of the node ids carries label ``"a"`` — a contiguous
    block that lands entirely in one range shard, the skew shape hybrid
    routing exists for.  A low-to-high spine plus random forward edges
    keeps every pattern embedded (nonempty answers).
    """
    rng = random.Random(seed)
    graph = DataGraph()
    for node in range(nodes):
        if node < nodes // 3:
            graph.add_node({"kind": node % 3}, label="a")
        else:
            graph.add_node({"kind": node % 3}, label="b" if node % 2 else "c")
    for node in range(nodes - 1):
        graph.add_edge(node, node + 1)
        graph.add_edge(node, rng.randrange(node + 1, nodes))
    return graph


def skewed_queries() -> list:
    """Patterns whose roots bind the skewed ``"a"`` block."""
    batch = []
    for tail, kind in (("b", 0), ("c", 1), ("b", 2)):
        batch.append(
            QueryBuilder()
            .backbone("r", predicate=AttributePredicate.label("a"))
            .backbone("m", parent="r", predicate=AttributePredicate([("kind", "=", kind)]))
            .backbone("t", parent="m", predicate=AttributePredicate.label(tail))
            .outputs("r", "t")
            .build()
        )
    return batch


def test_parallel_skewed_shards_steal_and_match_oracle():
    """Skewed candidates, shards > workers: stealing + sharded upward.

    With four shards over two workers every multi-shard wave overflows
    the in-flight cap, so idle workers must steal queued shard tasks;
    the skewed root block additionally forces hybrid routing's hash
    fallback.  Answers, survivor sets after *both* prune phases, and
    prune-op counts must still be byte-identical to the single-shard
    run, and the answers must match ``evaluate_naive``.
    """
    steals = upward_tasks = 0
    for seed in range(640, 648):
        graph = skewed_candidate_graph(seed)
        single = parallel_session(graph, workers=1, shards=1)
        sharded = parallel_session(graph, workers=2, shards=4)
        for position, query in enumerate(skewed_queries()):
            expected = evaluate_naive(query, graph)
            single_answer, single_stats = single.evaluate_with_stats(query)
            sharded_answer, sharded_stats = sharded.evaluate_with_stats(query)
            assert sharded_answer == expected, (
                f"seed {seed} query {position}: sharded execution "
                f"disagrees with evaluate_naive on a skewed graph"
            )
            assert single_answer == expected
            assert (
                sharded_stats.candidates_after_downward
                == single_stats.candidates_after_downward
            )
            assert (
                sharded_stats.candidates_after_upward
                == single_stats.candidates_after_upward
            )
            assert sharded_stats.downward_prune_ops == single_stats.downward_prune_ops
            steals += sharded_stats.parallel_steals
            upward_tasks += sharded_stats.parallel_upward_tasks
    # The sweep must actually exercise the new machinery: queued shard
    # tasks picked up by freed workers, and sharded upward refinement.
    assert steals > 0
    assert upward_tasks > 0


@pytest.mark.slow
def test_parallel_differential_agreement_thread_pool():
    """A slice of the sweep on a real thread pool."""
    coverage = run_parallel_differential_cases(range(400, 420), backend="thread")
    assert coverage["cases"] == 20
    assert coverage["nonempty"] > 0
