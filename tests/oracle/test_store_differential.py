"""Randomized differential testing of the warm store.

Seeded random (graph, workload) cases cross-check the persistence layer
three ways:

* **cold** — a session writing a fresh store must agree with
  ``evaluate_naive`` (the Section-2 oracle);
* **warm** — a second session rehydrating that store must answer
  *identically* to the cold session on every query (persistence is a
  cache, never a semantics change);
* **damaged** — after every artifact is truncated, a third session must
  silently fall back to a cold build and still match the oracle (the
  store can cost time, never correctness).

The cases run with codegen enabled so the persisted plan, result and
specialized-function artifacts all round-trip through pickle and the
rehydration path, not just the easy ones.
"""

import random

import pytest

from repro.datasets import random_labeled_graph, random_query_batch
from repro.engine import QuerySession
from repro.query import evaluate_naive

#: (first seed, number of seeds) chunks covering the default cases.
DEFAULT_CHUNKS = [(900, 10), (910, 10)]


def run_store_differential_cases(seeds, tmp_root, *, node_range=(8, 16)) -> dict:
    """One (graph, batch, store) case per seed; returns coverage counters."""
    coverage = {"cases": 0, "queries": 0, "nonempty": 0, "rehydrated": 0}
    for seed in seeds:
        rng = random.Random(seed)
        graph = random_labeled_graph(rng.randint(*node_range), rng)
        batch = random_query_batch(graph, rng, batch_size=rng.randint(2, 4), overlap=0.6)
        store_dir = tmp_root / f"seed-{seed}"

        cold = QuerySession(graph, store=store_dir, codegen="auto")
        expected = []
        for position, query in enumerate(batch):
            oracle = evaluate_naive(query, graph)
            answer = cold.evaluate(query)
            assert answer == oracle, (
                f"seed {seed} query {position}: cold store session disagrees "
                f"with evaluate_naive"
            )
            expected.append(oracle)
            coverage["nonempty"] += bool(oracle)
        cold.persist()
        cold.close()

        warm = QuerySession(graph, store=store_dir, codegen="auto")
        rehydrated = sum(warm.store_rehydrated.values())
        assert rehydrated > 0, (
            f"seed {seed}: warm session rehydrated nothing from a store the "
            f"cold session just persisted"
        )
        coverage["rehydrated"] += rehydrated
        for position, (query, oracle) in enumerate(zip(batch, expected)):
            assert warm.evaluate(query) == oracle, (
                f"seed {seed} query {position}: rehydrated session disagrees "
                f"with the cold session"
            )
        warm.close()

        # Truncate every artifact: rehydration must degrade to cold-build.
        artifacts = sorted(store_dir.rglob("*.artifact"))
        assert artifacts, f"seed {seed}: nothing persisted"
        for artifact in artifacts:
            blob = artifact.read_bytes()
            artifact.write_bytes(blob[: len(blob) // 2])
        damaged = QuerySession(graph, store=store_dir, codegen="auto")
        assert sum(damaged.store_rehydrated.values()) == 0, (
            f"seed {seed}: a truncated artifact rehydrated"
        )
        assert damaged.store.counters.corrupt > 0
        for position, (query, oracle) in enumerate(zip(batch, expected)):
            assert damaged.evaluate(query) == oracle, (
                f"seed {seed} query {position}: damaged-store session "
                f"disagrees with evaluate_naive"
            )
        damaged.close()

        coverage["cases"] += 1
        coverage["queries"] += len(batch)
    return coverage


@pytest.mark.parametrize("start,count", DEFAULT_CHUNKS)
def test_store_differential_chunk(start, count, tmp_path):
    coverage = run_store_differential_cases(range(start, start + count), tmp_path)
    assert coverage["cases"] == count
    assert coverage["nonempty"] > 0, "sweep never exercised a non-empty answer"
    assert coverage["rehydrated"] > 0
