"""Metamorphic properties of shared batch evaluation.

Three relations that must hold for *any* workload, checked over seeded
random batches:

* **batch-order invariance** — permuting the batch permutes the answers
  and nothing else;
* **singleton consistency** — a one-query batch equals single-query
  evaluation (shared machinery adds no semantics);
* **mutation freshness** — after the graph mutates (version bump), a
  re-evaluated batch never serves stale shared subtree results.
"""

import random

from repro.datasets import random_labeled_graph, random_query_batch
from repro.engine import GTEA, QuerySession
from repro.query import evaluate_naive


def _case(seed, *, batch_size=6, overlap=0.6):
    rng = random.Random(seed)
    graph = random_labeled_graph(rng.randint(8, 14), rng)
    batch = random_query_batch(graph, rng, batch_size=batch_size, overlap=overlap)
    return graph, batch


def test_batch_order_invariance():
    for seed in range(25):
        graph, batch = _case(seed)
        baseline = QuerySession(graph).evaluate_many(batch).results
        order = list(range(len(batch)))
        random.Random(seed + 1).shuffle(order)
        permuted = [batch[i] for i in order]
        shuffled = QuerySession(graph).evaluate_many(permuted).results
        for new_position, original_position in enumerate(order):
            assert shuffled[new_position] == baseline[original_position]


def test_singleton_batch_equals_single_query_evaluation():
    for seed in range(25):
        graph, batch = _case(seed, batch_size=3)
        for query in batch:
            as_batch = QuerySession(graph).evaluate_many([query])
            assert len(as_batch.results) == 1
            assert as_batch.results[0] == QuerySession(graph).evaluate(query)
            assert as_batch.results[0] == GTEA(graph).evaluate(query)


def test_graph_mutation_never_serves_stale_subtree_results():
    for seed in range(15):
        graph, batch = _case(seed)
        session = QuerySession(graph)
        session.evaluate_many(batch)
        assert len(session.subtree_cache) > 0

        # Mutate: a fresh labeled node wired under a random existing
        # node, so downward match sets can genuinely change.
        rng = random.Random(seed + 10_000)
        new_node = graph.add_node(label=rng.choice("abcd"))
        graph.add_edge(rng.randrange(new_node), new_node)

        refreshed = session.evaluate_many(batch)
        assert len(session.subtree_cache) > 0  # repopulated, not stale
        assert session.subtree_cache.counters.invalidations >= 1
        for query, answer in zip(batch, refreshed.results):
            assert answer == evaluate_naive(query, graph)


def test_repeated_batch_is_pure():
    """Evaluating the same batch twice yields identical answers (the
    second pass is served by caches; staleness would show here)."""
    for seed in range(10):
        graph, batch = _case(seed)
        session = QuerySession(graph)
        first = session.evaluate_many(batch)
        second = session.evaluate_many(batch)
        assert first.results == second.results
        assert second.stats.input_nodes == 0  # all result-cache hits
