"""Engine extensions: group operator (Sec. 4.3 Remark) and multiple
output structures (Appendix D)."""

from repro.datasets import generate_dblp
from repro.engine import GTEA
from repro.query import QueryBuilder, evaluate_naive
from tests.paper_fixtures import FIG2_ANSWER, fig2_graph, fig2_query, v


class TestGroupOperator:
    def test_grouped_output_collapses_subtree_matches(self):
        graph = fig2_graph()
        # Group u4's matches under each u3 image.
        from repro.query import query_from_dict, query_to_dict

        spec = query_to_dict(fig2_query())
        spec["outputs"] = ["u3", "u4"]
        query = query_from_dict(spec)
        engine = GTEA(graph)
        plain = engine.evaluate(query)
        grouped = engine.evaluate(query, group_nodes=("u4",))
        # Plain: one row per (u3, u4) pair; grouped: one row per u3 image
        # carrying the set of its u4 matches.
        assert len(grouped) == len({row[0] for row in plain})
        for u3_image, group_element in grouped:
            expected = {row[1] for row in plain if row[0] == u3_image}
            members = {dict(item)["u4"] for item in group_element}
            assert members == expected

    def test_group_on_dblp_authors(self):
        dblp = generate_dblp(num_proceedings=5, papers_per_proceedings=3, seed=2)
        query = (
            QueryBuilder()
            .backbone("paper", label="inproceedings")
            .backbone("author", parent="paper", edge="pc", label="author")
            .outputs("paper", "author")
            .build()
        )
        engine = GTEA(dblp.graph)
        plain = engine.evaluate(query)
        grouped = engine.evaluate(query, group_nodes=("author",))
        # One grouped row per paper, carrying exactly its author set.
        assert len(grouped) == len({row[0] for row in plain})
        for paper, group_element in grouped:
            expected = {row[1] for row in plain if row[0] == paper}
            members = {dict(item)["author"] for item in group_element}
            assert members == expected


class TestMultipleOutputStructures:
    def test_appendix_d_two_structures(self):
        """Appendix D: several output-node lists over one matching graph."""
        graph = fig2_graph()
        query = fig2_query()
        engine = GTEA(graph)
        answers, stats = engine.evaluate_with_stats(
            query, output_structures=[["u2", "u4"], ["u4"], ["u2"]]
        )
        assert answers[0] == FIG2_ANSWER
        assert answers[1] == {(b,) for __, b in FIG2_ANSWER}
        assert answers[2] == {(a,) for a, __ in FIG2_ANSWER}
        assert stats.result_count == sum(len(a) for a in answers.values())

    def test_structures_match_separate_queries(self):
        graph = fig2_graph()
        from repro.query import query_from_dict, query_to_dict

        engine = GTEA(graph)
        base = fig2_query()
        answers, __ = engine.evaluate_with_stats(
            base, output_structures=[["u3", "u4"], ["u2", "u3"]]
        )
        for position, outputs in enumerate([["u3", "u4"], ["u2", "u3"]]):
            spec = query_to_dict(base)
            spec["outputs"] = outputs
            separate = query_from_dict(spec)
            assert answers[position] == evaluate_naive(separate, graph)

    def test_empty_answer_structures(self):
        graph = fig2_graph()
        query = (
            QueryBuilder()
            .backbone("a", paper_label="G1")
            .backbone("b", parent="a", paper_label="A1")
            .outputs("a")
            .build()
        )
        answers, __ = GTEA(graph).evaluate_with_stats(
            query, output_structures=[["a"], ["a", "b"]]
        )
        assert answers == {0: set(), 1: set()}


class TestStatsShape:
    def test_row_format(self):
        graph = fig2_graph()
        __, stats = GTEA(graph).evaluate_with_stats(fig2_query())
        row = stats.row()
        assert {"#input", "#index", "#intermediate", "results"} <= set(row)

    def test_intermediate_cost_formula(self):
        graph = fig2_graph()
        __, stats = GTEA(graph).evaluate_with_stats(fig2_query())
        assert stats.intermediate_cost == 2 * (
            stats.matching_graph_nodes + stats.matching_graph_edges
        ) + stats.intermediate_tuples
        assert stats.intermediate_tuples == 0  # GTEA never builds tuples

    def test_row_schema_is_fixed_regardless_of_which_features_fired(self):
        """Regression: ``codegen_*`` (and other feature counters) used to
        vanish from the row when all-zero, so report rows from a
        codegen-off run could not be diffed column-wise against a
        codegen-on run."""
        from repro.engine.stats import EvaluationStats

        zeros = EvaluationStats()
        fired = EvaluationStats(
            codegen_hits=3,
            codegen_fallbacks=1,
            parallel_workers=4,
            parallel_shard_tasks=9,
            batch_shared_subtrees=2,
            partial_builds=1,
            partial_hits=2,
        )
        assert set(zeros.row()) == set(fired.row())
        for column in (
            "codegen_hits",
            "codegen_misses",
            "codegen_fallbacks",
            "workers",
            "shard_tasks",
            "shared_subtrees",
            "cache_hits",
            "cache_misses",
            "prune_ops",
            "partial_builds",
            "partial_hits",
            "partial_fallbacks",
        ):
            assert zeros.row()[column] == 0
        assert fired.row()["codegen_hits"] == 3
        assert fired.row()["workers"] == 4
        assert fired.row()["partial_builds"] == 1
        assert fired.row()["partial_hits"] == 2

    def test_phase_timer_accumulates(self):
        from repro.engine.stats import EvaluationStats

        stats = EvaluationStats()
        with stats.time_phase("x"):
            pass
        with stats.time_phase("x"):
            pass
        assert stats.phase_seconds["x"] >= 0
        assert len(stats.phase_seconds) == 1
