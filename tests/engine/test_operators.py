"""Unit tests for the physical-operator pipeline (repro.engine.operators).

Covers each operator in isolation (empty inputs, constant-fext leaves,
the baseline delegate, the constant-empty route), the adaptive downward
scheduler (runtime order differs from the compile-time order with
identical results, backbone-empty early exit, node-id tie-breaking), and
the estimated-vs-observed ``explain()`` rendering."""

import pytest

from repro.engine import (
    GTEA,
    EvaluationStats,
    ExecutionState,
    QuerySession,
    executed_downward_order,
)
from repro.engine.operators import UpwardPrune, build_gtea_operators, run_pipeline
from repro.graph import DataGraph
from repro.logic import FALSE
from repro.plan import compile_query
from repro.query import AttributePredicate, QueryBuilder, evaluate_naive


def chain_query(root_label="r", child_label="m"):
    return (
        QueryBuilder()
        .backbone("q_root", predicate=AttributePredicate.label(root_label))
        .backbone("q_kid", parent="q_root", predicate=AttributePredicate.label(child_label))
        .outputs("q_root")
        .build()
    )


def skewed_graph():
    """Estimates mislead: label ``h`` is common but its constrained
    candidates are empty; an unlabeled-attribute node is estimated at
    graph size but actually unique."""
    graph = DataGraph()
    root = graph.add_node(label="r")
    for _ in range(10):
        graph.add_edge(root, graph.add_node({"kind": 0}, label="h"))
    for _ in range(5):
        graph.add_edge(root, graph.add_node(label="m"))
    graph.add_edge(root, graph.add_node({"kind": 1}, label="t"))
    return graph


def skewed_empty_query():
    """Child ``a`` estimated at 10 (label ``h``) but actually empty."""
    return (
        QueryBuilder()
        .backbone("root", predicate=AttributePredicate.label("r"))
        .backbone("a", parent="root", predicate=AttributePredicate([("label", "=", "h"), ("kind", "=", 7)]))
        .backbone("b", parent="root", predicate=AttributePredicate.label("m"))
        .outputs("root")
        .build()
    )


def skewed_nonempty_query():
    """Child ``a`` estimated at graph size (no label pin) but actually
    one node; child ``b`` estimated (and actually) at five."""
    return (
        QueryBuilder()
        .backbone("root", predicate=AttributePredicate.label("r"))
        .backbone("a", parent="root", predicate=AttributePredicate([("kind", "=", 1)]))
        .backbone("b", parent="root", predicate=AttributePredicate.label("m"))
        .outputs("root", "a", "b")
        .build()
    )


class TestOperatorUnits:
    def test_candidate_scan_empty_root_short_circuits(self):
        graph = DataGraph.from_edges("mm", [(0, 1)])
        engine = GTEA(graph)
        plan = engine.compile(chain_query(root_label="zzz"))
        results, stats = engine.execute(plan)
        assert results == set()
        ops = [record.op for record in stats.operator_stats]
        # Only the scan ran: no root candidates, nothing to prune.
        assert ops == ["CandidateScan"]
        assert stats.index_lookups == 0

    def test_constant_false_fext_leaf_empties_its_set(self):
        # Rewrites can leave a constant-FALSE structural predicate on a
        # leaf (the PR-3 oracle bug); the DownwardPrune operator must
        # evaluate it rather than skip childless nodes.  The pipeline is
        # driven directly — the normalize phase would short-circuit this
        # query to ConstantEmpty before any operator ran.
        graph = DataGraph.from_edges("rm", [(0, 1)])
        query = (
            QueryBuilder()
            .backbone("q_root", predicate=AttributePredicate.label("r"))
            .backbone("q_kid", parent="q_root", predicate=AttributePredicate.label("m"))
            .structural("q_kid", FALSE)
            .outputs("q_root")
            .build()
        )
        engine = GTEA(graph)
        stats = EvaluationStats()
        state = ExecutionState(engine, query, stats)
        run_pipeline(state, build_gtea_operators(query.bottom_up()))
        assert state.finished and state.answer == set()
        pruned = {
            record.target: record.output_size
            for record in stats.operator_stats
            if record.op == "DownwardPrune"
        }
        assert pruned["q_kid"] == 0

    def test_upward_prune_empty_downward_root_short_circuits(self):
        graph = DataGraph.from_edges("rm", [(0, 1)])
        engine = GTEA(graph)
        plan = engine.compile(chain_query(root_label="r", child_label="m"))
        stats = EvaluationStats()
        state = ExecutionState(engine, plan.query, stats)
        state.down = {node_id: [] for node_id in plan.query.nodes}
        run_pipeline(state, [UpwardPrune()])
        assert state.finished and state.answer == set()

    def test_baseline_delegate_routes_and_records(self):
        # A sparse DAG with fat posting lists makes the candidate volume
        # exceed the two whole-graph sweeps, routing to TwigStackD.
        # optimize=False keeps the duplicate y-children (minimization
        # would merge them and shrink the estimate below the threshold).
        labels = "x" * 10 + "y" * 10
        graph = DataGraph.from_edges(labels, [(i, 10 + i) for i in range(5)])
        query = (
            QueryBuilder()
            .backbone("q_root", predicate=AttributePredicate.label("x"))
            .backbone("kid_a", parent="q_root", predicate=AttributePredicate.label("y"))
            .backbone("kid_b", parent="q_root", predicate=AttributePredicate.label("y"))
            .outputs("q_root")
            .build()
        )
        engine = GTEA(graph, optimize=False)
        plan = engine.compile(query)
        assert plan.physical.executor == "twigstackd"
        assert [op.op for op in plan.physical.operators] == ["BaselineDelegate"]
        results, stats = engine.execute(plan)
        assert results == evaluate_naive(query, graph)
        (record,) = stats.operator_stats
        assert record.op == "BaselineDelegate"
        assert record.input_size == graph.num_nodes + graph.num_edges
        assert record.output_size == len(results)

    def test_constant_empty_operator_for_unsat_plans(self):
        graph = DataGraph.from_edges("rm", [(0, 1)])
        query = (
            QueryBuilder()
            .backbone("q_root", predicate=AttributePredicate.label("r"))
            .predicate("p", parent="q_root", predicate=AttributePredicate.label("m"))
            .structural("q_root", "p & !p")
            .outputs("q_root")
            .build()
        )
        engine = GTEA(graph)
        results, stats = engine.evaluate_with_stats(query)
        assert results == set()
        assert [record.op for record in stats.operator_stats] == ["ConstantEmpty"]
        assert stats.input_nodes == 0 and stats.index_lookups == 0
        # Alternative output structures get one empty set per position.
        structured, _ = engine.evaluate_with_stats(
            query, output_structures=[["q_root"], ["q_root"]]
        )
        assert structured == {0: set(), 1: set()}

    def test_repeated_execution_reports_stable_index_probes(self):
        # Regression: the engine's reachability counters are cumulative
        # across executions; each run must be charged only its own
        # probes, not the history since the index was built.
        graph = skewed_graph()
        engine = GTEA(graph)
        plan = engine.compile(skewed_nonempty_query())
        _, first = engine.execute(plan)
        _, second = engine.execute(plan)
        _, third = engine.execute(plan)
        assert first.index_lookups == second.index_lookups == third.index_lookups
        assert first.index_entries == second.index_entries == third.index_entries
        per_op_first = [(r.label, r.index_lookups) for r in first.operator_stats]
        per_op_third = [(r.label, r.index_lookups) for r in third.operator_stats]
        assert per_op_first == per_op_third

    def test_candidate_scan_reports_sizes(self):
        graph = skewed_graph()
        engine = GTEA(graph)
        plan = engine.compile(skewed_nonempty_query())
        _, stats = engine.execute(plan)
        scan = stats.operator_stats[0]
        assert scan.op == "CandidateScan"
        assert scan.output_size == sum(stats.candidates_initial.values())


class TestAdaptiveReordering:
    def test_runtime_order_differs_with_identical_results(self):
        graph = skewed_graph()
        query = skewed_nonempty_query()
        static_engine = GTEA(graph)
        adaptive_engine = GTEA(graph, adaptive=True)
        static_results, static_stats = static_engine.evaluate_with_stats(query)
        adaptive_results, adaptive_stats = adaptive_engine.evaluate_with_stats(query)

        assert adaptive_results == static_results == evaluate_naive(query, graph)
        assert static_results  # the workload is nonempty
        static_order = executed_downward_order(static_stats)
        adaptive_order = executed_downward_order(adaptive_stats)
        assert set(static_order) == set(adaptive_order)
        assert static_order != adaptive_order
        # Estimates rank b (5) below a (graph size); actual sizes rank
        # a (1 node) below b (5 nodes).
        assert static_order.index("b") < static_order.index("a")
        assert adaptive_order.index("a") < adaptive_order.index("b")

    def test_backbone_empty_early_exit_skips_remaining_prunes(self):
        graph = skewed_graph()
        query = skewed_empty_query()
        static_results, static_stats = GTEA(graph).evaluate_with_stats(query)
        adaptive_results, adaptive_stats = GTEA(graph, adaptive=True).evaluate_with_stats(query)

        assert adaptive_results == static_results == set()
        assert static_stats.downward_prune_ops == len(query.nodes)
        assert adaptive_stats.downward_prune_ops < static_stats.downward_prune_ops
        last = [r for r in adaptive_stats.operator_stats if r.op == "DownwardPrune"][-1]
        assert last.note == "adaptive early-exit"
        assert last.target == "a" and last.output_size == 0

    def test_adaptive_ties_break_on_node_id(self):
        # Two children with equal-sized actual candidate sets (distinct
        # labels, same posting length, so minimization keeps both): the
        # adaptive schedule must order them by node id.
        graph = DataGraph.from_edges("rmmnn", [(0, 1), (0, 2), (0, 3), (0, 4)])
        query = (
            QueryBuilder()
            .backbone("q_root", predicate=AttributePredicate.label("r"))
            .backbone("kid_b", parent="q_root", predicate=AttributePredicate.label("m"))
            .backbone("kid_a", parent="q_root", predicate=AttributePredicate.label("n"))
            .outputs("q_root")
            .build()
        )
        _, stats = GTEA(graph, adaptive=True).evaluate_with_stats(query)
        assert executed_downward_order(stats) == ("kid_a", "kid_b", "q_root")

    def test_compile_time_ties_break_on_node_id(self):
        # The same query compiles to the same downward order every time,
        # with tied estimates resolved by node id.
        graph = DataGraph.from_edges("rmmnn", [(0, 1), (0, 2), (0, 3), (0, 4)])
        query = (
            QueryBuilder()
            .backbone("q_root", predicate=AttributePredicate.label("r"))
            .backbone("kid_b", parent="q_root", predicate=AttributePredicate.label("m"))
            .backbone("kid_a", parent="q_root", predicate=AttributePredicate.label("n"))
            .outputs("q_root")
            .build()
        )
        first = compile_query(graph, query)
        second = compile_query(graph, query)
        assert first.physical.downward_order == ("kid_a", "kid_b", "q_root")
        assert first.physical.downward_order == second.physical.downward_order
        assert first.explain() == second.explain()

    def test_adaptive_session_matches_naive(self):
        graph = skewed_graph()
        session = QuerySession(graph, adaptive=True)
        for query in (skewed_nonempty_query(), skewed_empty_query()):
            assert session.evaluate(query) == evaluate_naive(query, graph)

    @pytest.mark.parametrize("group_nodes", [(), ("b",)])
    def test_adaptive_group_evaluation_agrees_with_static(self, group_nodes):
        graph = skewed_graph()
        query = skewed_nonempty_query()
        static = GTEA(graph).evaluate(query, group_nodes=group_nodes)
        adaptive = GTEA(graph, adaptive=True).evaluate(query, group_nodes=group_nodes)
        assert static == adaptive


class TestExplainObserved:
    def test_explain_shows_estimates_without_observations(self):
        graph = skewed_graph()
        session = QuerySession(graph)
        text = session.explain(skewed_nonempty_query())
        assert "operator pipeline:" in text
        assert "CandidateScan" in text and "DownwardPrune(a)" in text
        assert "obs " not in text

    def test_explain_shows_observed_after_execution(self):
        graph = skewed_graph()
        session = QuerySession(graph)
        query = skewed_nonempty_query()
        session.evaluate(query)
        text = session.explain(query)
        assert "est~" in text and "obs in=" in text
        assert "probes=" in text

    def test_explain_marks_adaptive_reordering(self):
        graph = skewed_graph()
        session = QuerySession(graph, adaptive=True)
        query = skewed_nonempty_query()
        session.evaluate(query)
        text = session.explain(query)
        assert "executed downward order (adaptive):" in text

    def test_explain_marks_skipped_operators_after_early_exit(self):
        graph = skewed_graph()
        session = QuerySession(graph, adaptive=True)
        query = skewed_empty_query()
        session.evaluate(query)
        text = session.explain(query)
        assert "(not executed)" in text
