"""Property tests: GTEA must agree with the naive oracle everywhere.

Random graphs (DAGs and cyclic digraphs) x random GTPQs covering AD/PC
edges, conjunction, disjunction and negation — the decisive correctness
check of the whole engine.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine import GTEA
from repro.query import QueryBuilder, evaluate_naive
from tests.reachability.test_indexes import random_dags, random_digraphs

_LABELS = "abcx"


def labeled(graph, data):
    for node in graph.nodes():
        graph.attrs(node)["label"] = data.draw(
            st.sampled_from(_LABELS), label=f"label_{node}"
        )
    return graph


@st.composite
def random_queries(draw):
    """Random small GTPQs over labels a/b/c/x with varied shapes."""
    builder = QueryBuilder()
    builder.backbone("r", label=draw(st.sampled_from(_LABELS)))
    shape = draw(
        st.sampled_from(
            ["chain", "star", "negation", "disjunction", "mixed", "deep"]
        )
    )
    edge = lambda: draw(st.sampled_from(["ad", "ad", "pc"]))  # mostly AD
    label = lambda: draw(st.sampled_from(_LABELS))
    if shape == "chain":
        builder.backbone("b1", parent="r", edge=edge(), label=label())
        builder.backbone("b2", parent="b1", edge=edge(), label=label())
        builder.outputs("r", "b1", "b2")
    elif shape == "star":
        builder.backbone("b1", parent="r", edge=edge(), label=label())
        builder.predicate("p1", parent="r", edge=edge(), label=label())
        builder.predicate("p2", parent="r", edge=edge(), label=label())
        builder.structural("r", "p1 & p2")
        builder.outputs("r", "b1")
    elif shape == "negation":
        builder.predicate("p1", parent="r", edge=edge(), label=label())
        builder.predicate("p2", parent="r", edge=edge(), label=label())
        builder.structural("r", draw(st.sampled_from(["!p1", "p1 & !p2", "!p1 & !p2"])))
        builder.outputs("r")
    elif shape == "disjunction":
        builder.predicate("p1", parent="r", edge=edge(), label=label())
        builder.predicate("p2", parent="r", edge=edge(), label=label())
        builder.backbone("b1", parent="r", edge=edge(), label=label())
        builder.structural("r", "p1 | p2")
        builder.outputs("r", "b1")
    elif shape == "mixed":
        builder.predicate("p1", parent="r", edge=edge(), label=label())
        builder.predicate("p2", parent="r", edge=edge(), label=label())
        builder.predicate("p3", parent="p1", edge=edge(), label=label())
        builder.structural("r", draw(
            st.sampled_from(["(p1 & !p2)", "p1 | !p2", "!(p1 & p2)", "!(p1 | p2)"])
        ))
        builder.structural("p1", "p3")
        builder.outputs("r")
    else:  # deep
        builder.backbone("b1", parent="r", edge=edge(), label=label())
        builder.backbone("b2", parent="b1", edge=edge(), label=label())
        builder.predicate("p1", parent="b1", edge=edge(), label=label())
        builder.predicate("p2", parent="p1", edge=edge(), label=label())
        builder.structural("b1", draw(st.sampled_from(["p1", "!p1"])))
        builder.structural("p1", "p2")
        builder.outputs("r", "b2")
    return builder.build()


@settings(max_examples=120, deadline=None)
@given(random_dags(max_nodes=12), random_queries(), st.data())
def test_gtea_matches_oracle_on_dags(graph, query, data):
    labeled(graph, data)
    expected = evaluate_naive(query, graph)
    assert GTEA(graph).evaluate(query) == expected


@settings(max_examples=80, deadline=None)
@given(random_digraphs(max_nodes=10), random_queries(), st.data())
def test_gtea_matches_oracle_on_cyclic_graphs(graph, query, data):
    labeled(graph, data)
    expected = evaluate_naive(query, graph)
    assert GTEA(graph).evaluate(query) == expected


@settings(max_examples=40, deadline=None)
@given(random_dags(max_nodes=12), st.data())
def test_gtea_pc_only_queries(graph, data):
    """Pure parent-child patterns (the hard case of Section 4.4)."""
    labeled(graph, data)
    query = (
        QueryBuilder()
        .backbone("r", label=data.draw(st.sampled_from(_LABELS)))
        .backbone("c1", parent="r", edge="pc", label=data.draw(st.sampled_from(_LABELS)))
        .predicate("p1", parent="c1", edge="pc", label=data.draw(st.sampled_from(_LABELS)))
        .structural("c1", data.draw(st.sampled_from(["p1", "!p1"])))
        .outputs("r", "c1")
        .build()
    )
    expected = evaluate_naive(query, graph)
    assert GTEA(graph).evaluate(query) == expected
