"""QuerySession: caching, invalidation, batching, index pooling."""

import pytest

from repro.engine import GTEA, QuerySession
from repro.graph import DataGraph
from repro.query import (
    QueryBuilder,
    AttributePredicate,
    evaluate_naive,
    query_to_dict,
    query_to_json,
)


def small_graph():
    return DataGraph.from_edges(
        "aabbccdd",
        [(0, 2), (0, 4), (1, 3), (2, 6), (3, 7), (4, 6), (2, 4), (5, 7)],
    )


def query_ab(extra_pred: bool = True):
    builder = (
        QueryBuilder()
        .backbone("r", predicate=AttributePredicate.label("a"))
        .backbone("x", parent="r", predicate=AttributePredicate.label("b"))
    )
    if extra_pred:
        builder.predicate("p", parent="x", predicate=AttributePredicate.label("c"))
    return builder.outputs("r", "x").build()


def query_abd():
    return (
        QueryBuilder()
        .backbone("r", predicate=AttributePredicate.label("a"))
        .backbone("x", parent="r", predicate=AttributePredicate.label("b"))
        .backbone("y", parent="x", predicate=AttributePredicate.label("d"))
        .outputs("r", "y")
        .build()
    )


class TestCacheAccounting:
    def test_cold_then_warm_hit_miss_counters(self):
        session = QuerySession(small_graph())
        query = query_ab()
        _, cold = session.evaluate_with_stats(query)
        assert cold.plan_cache_hits == 0
        assert cold.plan_cache_misses == 1
        assert cold.result_cache_hits == 0
        assert cold.result_cache_misses == 1
        assert cold.candidate_cache_misses == len(query.nodes)
        assert cold.candidate_cache_hits == 0

        _, warm = session.evaluate_with_stats(query)
        assert warm.plan_cache_hits == 1
        assert warm.plan_cache_misses == 0
        assert warm.result_cache_hits == 1
        assert warm.result_cache_misses == 0
        # Result-cache hits skip candidate fetching entirely.
        assert warm.candidate_cache_hits == 0
        assert warm.input_nodes == 0

    def test_results_match_engine_and_oracle(self):
        graph = small_graph()
        session = QuerySession(graph)
        query = query_ab()
        expected = evaluate_naive(query, graph)
        assert session.evaluate(query) == expected
        assert session.evaluate(query) == expected  # warm copy, not a view
        assert GTEA(graph).evaluate(query) == expected

    def test_cached_result_copies_are_independent(self):
        session = QuerySession(small_graph())
        query = query_ab()
        first = session.evaluate(query)
        first.add(("junk",))
        assert ("junk",) not in session.evaluate(query)

    def test_candidate_cache_shared_across_overlapping_queries(self):
        session = QuerySession(small_graph(), result_cache_size=0)
        _, first = session.evaluate_with_stats(query_ab())
        assert first.candidate_cache_hits == 0
        _, second = session.evaluate_with_stats(query_abd())
        # "a" and "b" predicates are shared with the first query.
        assert second.candidate_cache_hits == 2
        assert second.candidate_cache_misses == 1  # the "d" predicate

    def test_group_nodes_key_result_cache_separately(self):
        session = QuerySession(small_graph())
        query = query_ab()
        session.evaluate(query)
        _, stats = session.evaluate_with_stats(query, group_nodes=("x",))
        assert stats.result_cache_hits == 0
        assert stats.result_cache_misses == 1


class TestPlanCache:
    def test_equivalent_serialized_forms_share_a_plan(self):
        session = QuerySession(small_graph())
        query = query_ab()
        plan = session.plan(query)
        assert session.plan(query_to_dict(query)) is plan
        assert session.plan(query_to_json(query)) is plan

    def test_repeated_json_skips_parsing_via_alias(self):
        session = QuerySession(small_graph())
        text = query_to_json(query_ab())
        plan = session.plan(text)
        hits_before = session.plan_cache.counters.hits
        assert session.plan(text) is plan
        assert session.plan_cache.counters.hits == hits_before + 1

    def test_rejects_unplannable_input(self):
        session = QuerySession(small_graph())
        with pytest.raises(TypeError):
            session.plan(42)


class TestInvalidation:
    def test_graph_mutation_invalidates_and_recomputes(self):
        graph = small_graph()
        session = QuerySession(graph)
        query = query_ab()
        before = session.evaluate(query)
        # New a-node above an existing b-node changes the answer.
        new_node = graph.add_node(label="a")
        graph.add_edge(new_node, 2)
        after = session.evaluate(query)
        assert after == evaluate_naive(query, graph)
        assert after != before
        assert session.result_cache.counters.invalidations == 1

    def test_explicit_invalidate_clears_pool_and_caches(self):
        session = QuerySession(small_graph())
        session.evaluate(query_ab())
        assert len(session.result_cache) == 1
        session.invalidate()
        assert len(session.result_cache) == 0
        assert len(session.plan_cache) == 0
        assert session.cache_info()["indexes"]["pooled"] == 0


class TestBatchEvaluation:
    def test_deduplicates_and_fans_out_in_order(self):
        graph = small_graph()
        session = QuerySession(graph)
        q1, q2 = query_ab(), query_abd()
        batch = session.evaluate_many([q1, q2, q1, query_to_json(q1)])
        assert batch.stats.batch_queries == 4
        assert batch.stats.batch_unique_queries == 2
        assert batch.results[0] == batch.results[2] == batch.results[3]
        assert batch.results[0] == evaluate_naive(q1, graph)
        assert batch.results[1] == evaluate_naive(q2, graph)
        assert batch.fingerprints[0] == batch.fingerprints[2]

    def test_warm_batch_is_all_result_cache_hits(self):
        session = QuerySession(small_graph())
        workload = [query_ab(), query_abd(), query_ab()]
        session.evaluate_many(workload)
        batch = session.evaluate_many(workload)
        assert batch.stats.result_cache_hits == 2  # one per unique query
        assert batch.stats.result_cache_misses == 0
        assert batch.stats.input_nodes == 0

    def test_aggregate_stats_sum_evaluations(self):
        session = QuerySession(small_graph(), result_cache_size=0)
        batch = session.evaluate_many([query_ab(), query_abd()])
        assert batch.stats.evaluations == 2
        assert batch.stats.result_cache_misses == 2
        assert batch.stats.input_nodes > 0


class TestIndexPooling:
    def test_auto_resolves_to_tc_on_tiny_graph(self):
        session = QuerySession(small_graph())
        assert session.resolved_index == "tc"
        assert session.engine().reachability.index.name == "tc"

    def test_pool_reuses_services_per_name(self):
        session = QuerySession(small_graph())
        assert session.reachability("3hop") is session.reachability("3hop")
        assert session.engine("3hop") is session.engine("3hop")
        assert session.engine("3hop") is not session.engine("tc")
        assert session.cache_info()["indexes"]["pooled"] == 2

    @pytest.mark.parametrize("index", ["3hop", "tc", "tree-cover", "chain-cover"])
    def test_all_pooled_indexes_agree(self, index):
        graph = small_graph()
        query = query_ab()
        expected = evaluate_naive(query, graph)
        session = QuerySession(graph, index=index)
        assert session.evaluate(query) == expected
