"""Sharded, concurrent prune execution (``repro.engine.parallel``).

Most cases run the ``"serial"`` backend: it goes through the identical
dispatch/merge machinery (sharding, frontier, survivor merge, stats
attribution) with inline futures, so it is deterministic and visible to
coverage.  One thread-pool and one process-pool case check the real
pools agree with it.
"""

import multiprocessing
import random

import pytest

from repro.datasets import random_labeled_graph, random_query_batch
from repro.engine import GTEA, ParallelExecutor, ParallelOptions, QuerySession
from repro.engine.parallel import _resolve_backend
from repro.graph import DataGraph
from repro.query import AttributePredicate, QueryBuilder

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def small_graph():
    return DataGraph.from_edges(
        "aabbccdd",
        [(0, 2), (0, 4), (1, 3), (2, 6), (3, 7), (4, 6), (2, 4), (5, 7)],
    )


def query_abc():
    return (
        QueryBuilder()
        .backbone("r", predicate=AttributePredicate.label("a"))
        .backbone("x", parent="r", predicate=AttributePredicate.label("b"))
        .predicate("p", parent="x", predicate=AttributePredicate.label("c"))
        .outputs("r", "x")
        .build()
    )


def serial_executor(engine, workers=3, **kwargs):
    kwargs.setdefault("min_shard_size", 1)
    return ParallelExecutor(engine, workers, backend="serial", **kwargs)


class TestOptions:
    def test_backend_validation(self):
        with pytest.raises(ValueError, match="backend"):
            _resolve_backend("bogus")

    def test_auto_resolves_to_a_real_backend(self):
        assert _resolve_backend("auto") in ("process", "thread")
        assert _resolve_backend("serial") == "serial"

    def test_session_normalizes_int_to_options(self):
        session = QuerySession(small_graph(), parallel=3)
        assert session.parallel_options == ParallelOptions(workers=3)

    def test_session_without_parallel_has_no_executor(self):
        session = QuerySession(small_graph())
        assert session.parallel_options is None
        assert session.parallel_executor() is None

    def test_from_options_applies_every_field(self):
        options = ParallelOptions(
            workers=5,
            backend="serial",
            shards=2,
            strategy="range",
            min_shard_size=4,
            upward=False,
            overlap_scan=False,
            steal=False,
        )
        executor = ParallelExecutor.from_options(GTEA(small_graph()), options)
        assert executor.workers == 5
        assert executor.backend == "serial"
        assert executor.num_shards == 2
        assert executor.min_shard_size == 4
        assert executor.upward is False
        assert executor.overlap_scan is False
        assert executor.steal is False

    def test_full_pipeline_knobs_default_on(self):
        executor = ParallelExecutor(GTEA(small_graph()), 2, backend="serial")
        assert executor.upward is True
        assert executor.overlap_scan is True
        assert executor.steal is True
        assert executor._partition.strategy == "hybrid"


class TestSingleQueryExecution:
    def test_matches_serial_engine_on_fig_graph(self):
        engine = GTEA(small_graph())
        plan = engine.compile(query_abc())
        expected, _ = engine.execute(plan)
        with serial_executor(engine) as executor:
            answer, stats = executor.execute(plan)
        assert answer == expected
        assert stats.parallel_workers == 3
        assert stats.parallel_shard_tasks > 0

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_byte_identical_across_shard_counts(self, shards):
        rng = random.Random(5)
        graph = random_labeled_graph(60, rng)
        engine = GTEA(graph)
        for query in random_query_batch(graph, rng, batch_size=4):
            plan = engine.compile(query)
            if plan.physical.executor != "gtea":
                continue
            with serial_executor(engine, workers=1, shards=1) as single:
                base_answer, base_stats = single.execute(plan)
            with serial_executor(engine, workers=shards, shards=shards) as sharded:
                answer, stats = sharded.execute(plan)
            assert answer == base_answer
            assert stats.candidates_after_downward == base_stats.candidates_after_downward
            assert stats.downward_prune_ops == base_stats.downward_prune_ops

    def test_thread_backend_matches(self):
        rng = random.Random(9)
        graph = random_labeled_graph(50, rng)
        engine = GTEA(graph)
        plan = engine.compile(query_abc())
        expected, _ = engine.execute(plan)
        with ParallelExecutor(
            engine, 2, backend="thread", min_shard_size=1
        ) as executor:
            answer, stats = executor.execute(plan)
        assert answer == expected
        assert sum(stats.parallel_worker_tasks.values()) == (
            stats.parallel_shard_tasks + stats.parallel_upward_tasks
        )

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_process_backend_matches(self):
        rng = random.Random(3)
        graph = random_labeled_graph(40, rng)
        engine = GTEA(graph)
        plan = engine.compile(query_abc())
        expected, _ = engine.execute(plan)
        with ParallelExecutor(
            engine, 2, backend="process", min_shard_size=1
        ) as executor:
            answer, stats = executor.execute(plan)
        assert answer == expected
        assert sum(stats.parallel_worker_tasks.values()) == (
            stats.parallel_shard_tasks + stats.parallel_upward_tasks
        )

    def test_worker_labels_are_normalized(self):
        engine = GTEA(small_graph())
        with serial_executor(engine) as executor:
            _, stats = executor.execute(engine.compile(query_abc()))
        # The serial backend runs every task inline under one label.
        assert set(stats.parallel_worker_tasks) == {"w0"}
        assert stats.parallel_worker_tasks["w0"] == (
            stats.parallel_shard_tasks + stats.parallel_upward_tasks
        )

    def test_stats_row_surfaces_parallel_counters(self):
        engine = GTEA(small_graph())
        with serial_executor(engine) as executor:
            _, stats = executor.execute(engine.compile(query_abc()))
        row = stats.row()
        assert row["workers"] == 3
        assert row["shard_tasks"] == stats.parallel_shard_tasks
        assert row["upward_tasks"] == stats.parallel_upward_tasks
        assert row["steals"] == stats.parallel_steals

    def test_operator_stats_carry_parallel_notes(self):
        engine = GTEA(small_graph())
        with serial_executor(engine) as executor:
            _, stats = executor.execute(engine.compile(query_abc()))
        notes = [
            record.note
            for record in stats.operator_stats
            if record.op == "DownwardPrune"
        ]
        assert notes and all(note.startswith("parallel") for note in notes)

    def test_backbone_early_exit_on_empty_survivors(self):
        # No "z" nodes exist: the backbone child refines to the empty
        # set and the driver short-circuits like the adaptive scheduler.
        query = (
            QueryBuilder()
            .backbone("r", predicate=AttributePredicate.label("a"))
            .backbone("x", parent="r", predicate=AttributePredicate.label("z"))
            .outputs("r")
            .build()
        )
        engine = GTEA(small_graph())
        plan = engine.compile(query)
        with serial_executor(engine) as executor:
            answer, stats = executor.execute(plan)
        assert len(answer) == 0
        assert any(
            "early-exit" in record.note
            for record in stats.operator_stats
            if record.op == "DownwardPrune"
        )
        # "r" was never pruned — the early exit saved its visit.
        assert stats.downward_prune_ops == 1

    def test_empty_root_scan_short_circuits_under_overlap(self):
        # No "z" roots exist: the overlapped scan materializes the root
        # first and finishes before any prune wave is dispatched.
        query = (
            QueryBuilder()
            .backbone("r", predicate=AttributePredicate.label("z"))
            .backbone("x", parent="r", predicate=AttributePredicate.label("b"))
            .outputs("r")
            .build()
        )
        engine = GTEA(small_graph())
        plan = engine.compile(query)
        expected, _ = engine.execute(plan)
        with serial_executor(engine) as executor:
            answer, stats = executor.execute(plan)
        assert answer == expected and len(answer) == 0
        assert stats.parallel_shard_tasks == 0
        assert stats.downward_prune_ops == 0
        # The overlapped scan still books its synthesized operator record.
        assert stats.operator_stats[0].op == "CandidateScan"
        assert stats.operator_stats[0].note == "parallel overlap"

    def test_sharded_upward_matches_the_serial_upward_operator(self):
        # The same plan, once with the sharded upward frontier and once
        # falling back to the serial UpwardPrune operator: identical
        # answers and upward survivor sets, and only the sharded run
        # dispatches upward tasks.
        rng = random.Random(5)
        graph = random_labeled_graph(60, rng)
        engine = GTEA(graph)
        for query in random_query_batch(graph, rng, batch_size=4):
            plan = engine.compile(query)
            if plan.physical.executor != "gtea":
                continue
            with serial_executor(engine) as sharded:
                answer, stats = sharded.execute(plan)
            with serial_executor(
                engine, upward=False, overlap_scan=False, steal=False
            ) as fallback:
                base_answer, base_stats = fallback.execute(plan)
            assert answer == base_answer
            assert stats.candidates_after_upward == base_stats.candidates_after_upward
            assert base_stats.parallel_upward_tasks == 0

    def test_steals_occur_when_shards_overflow_the_workers(self):
        # Four shards over two workers: every multi-shard wave queues
        # more tasks than the in-flight cap, so completions must steal.
        rng = random.Random(7)
        graph = random_labeled_graph(60, rng)
        engine = GTEA(graph)
        plan = engine.compile(query_abc())
        with serial_executor(engine, workers=2, shards=4) as executor:
            _, stats = executor.execute(plan)
        assert stats.parallel_steals > 0
        with serial_executor(engine, workers=2, shards=4, steal=False) as executor:
            _, stats = executor.execute(plan)
        assert stats.parallel_steals == 0


class TestDelegation:
    def test_constant_empty_plan_runs_on_the_engine(self):
        query = (
            QueryBuilder()
            .backbone("r", predicate=AttributePredicate.label("a"))
            .predicate("p", parent="r", predicate=AttributePredicate.label("b"))
            .structural("r", "p & !p")
            .outputs("r")
            .build()
        )
        engine = GTEA(small_graph())
        plan = engine.compile(query)
        assert plan.physical.executor == "constant-empty"
        with serial_executor(engine) as executor:
            answer, stats = executor.execute(plan)
        assert len(answer) == 0
        assert stats.parallel_shard_tasks == 0

    def test_group_evaluation_runs_on_the_engine(self):
        engine = GTEA(small_graph())
        plan = engine.compile(query_abc())
        expected, _ = engine.execute(plan, group_nodes=("x",))
        with serial_executor(engine) as executor:
            answer, stats = executor.execute(plan, group_nodes=("x",))
        assert answer == expected
        assert stats.parallel_shard_tasks == 0


class TestLifecycle:
    def test_stale_graph_version_is_rejected(self):
        graph = small_graph()
        engine = GTEA(graph)
        plan = engine.compile(query_abc())
        executor = serial_executor(engine)
        graph.add_node(label="a")
        with pytest.raises(RuntimeError, match="graph version"):
            executor.execute(plan)

    def test_close_is_idempotent(self):
        engine = GTEA(small_graph())
        executor = ParallelExecutor(engine, 2, backend="thread")
        executor.execute(engine.compile(query_abc()))
        executor.close()
        executor.close()

    def test_session_invalidate_rebuilds_executor(self):
        graph = small_graph()
        session = QuerySession(
            graph, parallel=ParallelOptions(workers=2, backend="serial")
        )
        first = session.parallel_executor()
        assert session.parallel_executor() is first  # pooled
        graph.add_node(label="d")
        session.evaluate(query_abc())  # auto-invalidates on the new version
        assert session.parallel_executor() is not first

    def test_session_close_releases_pools(self):
        with QuerySession(
            small_graph(), parallel=ParallelOptions(workers=2, backend="serial")
        ) as session:
            session.evaluate(query_abc())
            assert session._parallel_pool
        assert not session._parallel_pool
        # The session is still usable: pools rebuild lazily.
        assert session.evaluate(query_abc()) is not None


class TestSessionIntegration:
    def test_session_results_match_serial_session(self):
        rng = random.Random(17)
        graph = random_labeled_graph(60, rng)
        queries = random_query_batch(graph, rng, batch_size=5)
        serial = QuerySession(graph)
        parallel = QuerySession(
            graph,
            parallel=ParallelOptions(workers=3, backend="serial", min_shard_size=1),
        )
        for query in queries:
            assert parallel.evaluate(query) == serial.evaluate(query)

    def test_batch_path_uses_the_parallel_frontier(self):
        rng = random.Random(21)
        graph = random_labeled_graph(50, rng)
        batch = random_query_batch(graph, rng, batch_size=5, overlap=0.7)
        serial = QuerySession(graph, result_cache_size=0)
        parallel = QuerySession(
            graph,
            result_cache_size=0,
            parallel=ParallelOptions(workers=3, backend="serial", min_shard_size=1),
        )
        expected = serial.evaluate_many(batch)
        observed = parallel.evaluate_many(batch)
        assert observed.results == expected.results
        assert observed.stats.parallel_workers == 3
        assert observed.stats.downward_prune_ops == expected.stats.downward_prune_ops

    def test_batch_sharded_vs_single_shard_byte_identical(self):
        rng = random.Random(29)
        graph = random_labeled_graph(55, rng)
        batch = random_query_batch(graph, rng, batch_size=6, overlap=0.6)

        def run(workers, shards):
            session = QuerySession(
                graph,
                result_cache_size=0,
                parallel=ParallelOptions(
                    workers=workers,
                    backend="serial",
                    shards=shards,
                    min_shard_size=1,
                ),
            )
            return session.evaluate_many(batch)

        single = run(1, 1)
        sharded = run(3, 3)
        assert sharded.results == single.results
        for got, want in zip(sharded.per_query, single.per_query):
            assert got.candidates_after_downward == want.candidates_after_downward
        assert (
            sharded.stats.downward_prune_ops == single.stats.downward_prune_ops
        )

    def test_explain_notes_the_parallel_route(self):
        session = QuerySession(
            small_graph(),
            parallel=ParallelOptions(workers=4, backend="serial"),
        )
        text = session.explain(query_abc())
        assert "[parallel] downward+upward sharded across 4 workers" in text
        assert "strategy=hybrid" in text
        assert "overlap-scan" in text
        assert "steal" in text

    def test_explain_notes_disabled_phases(self):
        session = QuerySession(
            small_graph(),
            parallel=ParallelOptions(
                workers=2, backend="serial", upward=False, overlap_scan=False, steal=False
            ),
        )
        text = session.explain(query_abc())
        assert "[parallel] downward sharded across 2 workers" in text
        assert "overlap-scan" not in text
        assert "steal" not in text

    def test_explain_notes_serial_fallback_for_unrouted_plans(self):
        query = (
            QueryBuilder()
            .backbone("r", predicate=AttributePredicate.label("a"))
            .predicate("p", parent="r", predicate=AttributePredicate.label("b"))
            .structural("r", "p & !p")
            .outputs("r")
            .build()
        )
        session = QuerySession(
            small_graph(), parallel=ParallelOptions(workers=2, backend="serial")
        )
        text = session.explain(query)
        assert "[parallel] serial (plan not routed to the GTEA executor)" in text
