"""Shared batch execution: DAG dedup, subtree cache, per-query stats."""

import random

import pytest

from repro.datasets import random_labeled_graph, random_query_batch
from repro.engine import GTEA, QuerySession, SharedExecutor
from repro.graph import DataGraph
from repro.plan import compile_batch
from repro.query import AttributePredicate, QueryBuilder, evaluate_naive


def small_graph():
    return DataGraph.from_edges(
        "aabbccdd",
        [(0, 2), (0, 4), (1, 3), (2, 6), (3, 7), (4, 6), (2, 4), (5, 7)],
    )


def query_ab():
    return (
        QueryBuilder()
        .backbone("r", predicate=AttributePredicate.label("a"))
        .backbone("x", parent="r", predicate=AttributePredicate.label("b"))
        .predicate("p", parent="x", predicate=AttributePredicate.label("c"))
        .outputs("r", "x")
        .build()
    )


def query_ab_extended():
    """``query_ab``'s whole pattern grafted under an extra ``a`` root."""
    return (
        QueryBuilder()
        .backbone("t", predicate=AttributePredicate.label("a"))
        .backbone("u", parent="t", predicate=AttributePredicate.label("a"))
        .backbone("v", parent="u", predicate=AttributePredicate.label("b"))
        .predicate("w", parent="v", predicate=AttributePredicate.label("c"))
        .outputs("t", "v")
        .build()
    )


def overlap_workload(seed=7, batch_size=24, overlap=0.7):
    rng = random.Random(seed)
    graph = random_labeled_graph(16, rng, edge_prob=0.2)
    batch = random_query_batch(
        graph, rng, batch_size=batch_size, size_range=(3, 6), overlap=overlap
    )
    return graph, batch


class TestSharedBatchCounters:
    def test_within_batch_subtree_sharing_is_counted(self):
        session = QuerySession(small_graph())
        batch = session.evaluate_many([query_ab(), query_ab_extended()])
        # r/x/p of query_ab reappear as u/v/w of the extended query.
        assert batch.stats.batch_shared_subtrees == 3
        assert batch.stats.downward_prune_ops == 4  # 7 occurrences, 4 distinct

    def test_shared_path_does_measurably_fewer_prune_ops(self):
        """Acceptance bar: >= 20 queries, >= 50% overlap, fewer prune ops."""
        graph, batch = overlap_workload(batch_size=24, overlap=0.7)
        assert len(batch) >= 20

        shared_session = QuerySession(graph, result_cache_size=0)
        shared = shared_session.evaluate_many(batch)
        isolated_session = QuerySession(graph, result_cache_size=0)
        isolated = isolated_session.evaluate_many(batch, share=False)

        assert shared.results == isolated.results
        for query, answer in zip(batch, shared.results):
            assert answer == evaluate_naive(query, graph)
        # At least half the subtree occurrences must be served by sharing,
        # and the op counter must drop accordingly.
        assert shared.stats.batch_shared_subtrees * 2 >= shared.stats.downward_prune_ops
        assert shared.stats.downward_prune_ops < isolated.stats.downward_prune_ops

    def test_subtree_cache_serves_across_batches(self):
        # share=True forces the DAG path even for singleton batches,
        # which the "auto" tiny-batch guard would route isolated.
        graph = small_graph()
        session = QuerySession(graph, result_cache_size=0)
        cold = session.evaluate_many([query_ab()], share=True)
        assert cold.stats.subtree_cache_hits == 0
        assert cold.stats.subtree_cache_misses == 3
        warm = session.evaluate_many([query_ab_extended()])
        # u/v/w reproduce r/x/p exactly (u's subtree is a -> b[c], the
        # same pattern as r's), so only the fresh root t is pruned anew.
        assert warm.stats.subtree_cache_hits == 3
        assert warm.stats.subtree_cache_misses == 1
        assert warm.stats.downward_prune_ops == 1
        assert warm.results[0] == evaluate_naive(query_ab_extended(), graph)

    def test_subtree_cache_size_zero_disables_cross_batch_reuse(self):
        graph = small_graph()
        session = QuerySession(graph, result_cache_size=0, subtree_cache_size=0)
        session.evaluate_many([query_ab()])
        warm = session.evaluate_many([query_ab_extended()])
        assert warm.stats.subtree_cache_hits == 0
        # Within-batch DAG sharing still applies.
        both = QuerySession(
            graph, result_cache_size=0, subtree_cache_size=0
        ).evaluate_many([query_ab(), query_ab_extended()])
        assert both.stats.batch_shared_subtrees == 3

    def test_cache_info_reports_subtree_cache(self):
        session = QuerySession(small_graph())
        session.evaluate_many([query_ab()], share=True)
        info = session.cache_info()
        assert info["subtree"]["size"] == 3


class TestPerQueryStats:
    def test_evaluate_many_reports_per_query_stats(self):
        """Regression: batch counters used to exist only in aggregate."""
        graph = small_graph()
        session = QuerySession(graph, result_cache_size=0)
        q1, q2 = query_ab(), query_ab_extended()
        batch = session.evaluate_many([q1, q2, q1])
        assert len(batch.per_query) == 3

        first, second, duplicate = batch.per_query
        # Shared prune work is charged to the first demanding query; the
        # second query records the sharing credits instead.
        assert first.downward_prune_ops == 3
        assert first.subtree_cache_misses == 3
        assert first.batch_shared_subtrees == 0
        assert second.downward_prune_ops == 1
        assert second.batch_shared_subtrees == 3
        # The duplicate input did no evaluation: only its plan-cache probe
        # and the fanned-out result count.
        assert duplicate.plan_cache_hits == 1
        assert duplicate.downward_prune_ops == 0
        assert duplicate.input_nodes == 0
        assert duplicate.result_count == len(batch.results[2])

    def test_per_query_stats_align_with_results_in_order(self):
        graph, batch = overlap_workload(seed=11, batch_size=8)
        outcome = QuerySession(graph).evaluate_many(batch)
        assert len(outcome.per_query) == len(batch)
        for stats, answer in zip(outcome.per_query, outcome.results):
            assert stats.result_count == len(answer)

    def test_aggregate_equals_per_query_sum_for_core_counters(self):
        graph, batch = overlap_workload(seed=13, batch_size=8)
        outcome = QuerySession(graph).evaluate_many(batch)
        for counter in (
            "downward_prune_ops",
            "subtree_cache_hits",
            "subtree_cache_misses",
            "batch_shared_subtrees",
            "plan_cache_misses",
            "input_nodes",
        ):
            total = sum(getattr(stats, counter) for stats in outcome.per_query)
            assert getattr(outcome.stats, counter) == total, counter


def query_de_disjoint():
    """No subtree in common with ``query_ab`` (labels d only)."""
    return (
        QueryBuilder()
        .backbone("r", predicate=AttributePredicate.label("d"))
        .predicate("p", parent="r", predicate=AttributePredicate.label("d"))
        .outputs("r")
        .build()
    )


class TestTinyBatchGuard:
    """``share="auto"`` skips DAG bookkeeping when nothing is shared."""

    def test_disjoint_batch_falls_back_to_isolated_path(self):
        graph = small_graph()
        session = QuerySession(graph, result_cache_size=0)
        batch = session.evaluate_many([query_ab(), query_de_disjoint()])
        assert batch.stats.batch_share_skipped == 1
        assert batch.stats.subtree_cache_misses == 0  # DAG never probed
        assert batch.stats.batch_shared_subtrees == 0
        assert batch.results[0] == evaluate_naive(query_ab(), graph)
        assert batch.results[1] == evaluate_naive(query_de_disjoint(), graph)

    def test_singleton_batch_is_skipped(self):
        session = QuerySession(small_graph(), result_cache_size=0)
        batch = session.evaluate_many([query_ab()])
        assert batch.stats.batch_share_skipped == 1
        assert len(session.subtree_cache) == 0

    def test_overlapping_batch_still_shares(self):
        session = QuerySession(small_graph(), result_cache_size=0)
        batch = session.evaluate_many([query_ab(), query_ab_extended()])
        assert batch.stats.batch_share_skipped == 0
        assert batch.stats.batch_shared_subtrees == 3

    def test_share_true_forces_the_dag_path(self):
        session = QuerySession(small_graph(), result_cache_size=0)
        batch = session.evaluate_many([query_ab()], share=True)
        assert batch.stats.batch_share_skipped == 0
        assert batch.stats.subtree_cache_misses == 3

    def test_cached_subtrees_reenable_sharing_for_disjoint_batches(self):
        # A warm subtree cache makes the DAG path worthwhile even for a
        # singleton batch: the downward sets are already materialized.
        graph = small_graph()
        session = QuerySession(graph, result_cache_size=0)
        session.evaluate_many([query_ab()], share=True)
        warm = session.evaluate_many([query_ab_extended()])
        assert warm.stats.batch_share_skipped == 0
        assert warm.stats.subtree_cache_hits == 3

    def test_guard_agrees_with_forced_sharing(self):
        graph = small_graph()
        auto = QuerySession(graph, result_cache_size=0).evaluate_many(
            [query_ab(), query_de_disjoint()]
        )
        forced = QuerySession(graph, result_cache_size=0).evaluate_many(
            [query_ab(), query_de_disjoint()], share=True
        )
        assert auto.results == forced.results


class TestSharedRouting:
    def test_unsatisfiable_queries_ride_along(self):
        unsat = (
            QueryBuilder()
            .backbone("r", predicate=AttributePredicate.label("a"))
            .predicate("p", parent="r", predicate=AttributePredicate.label("b"))
            .structural("r", "p & !p")
            .outputs("r")
            .build()
        )
        session = QuerySession(small_graph())
        batch = session.evaluate_many([query_ab(), unsat])
        assert batch.results[1] == set()
        assert batch.results[0] == evaluate_naive(query_ab(), small_graph())

    def test_group_nodes_fall_back_to_per_query_path(self):
        graph = small_graph()
        session = QuerySession(graph)
        grouped = session.evaluate_many([query_ab()], group_nodes=("x",))
        ungrouped = QuerySession(graph).evaluate_many([query_ab()])
        assert grouped.stats.batch_shared_subtrees == 0
        assert grouped.stats.subtree_cache_misses == 0
        assert len(grouped.results[0]) <= len(ungrouped.results[0])

    def test_shared_executor_standalone_over_compiled_batch(self):
        graph = small_graph()
        engine = GTEA(graph)
        batch = compile_batch(graph, [query_ab(), query_ab_extended()])
        outcomes = SharedExecutor(engine).execute(batch)
        assert outcomes[0][0] == evaluate_naive(query_ab(), graph)
        assert outcomes[1][0] == evaluate_naive(query_ab_extended(), graph)
        assert outcomes[1][1].batch_shared_subtrees == 3


class TestExplainBatch:
    def test_explain_batch_shows_shared_subplans(self):
        session = QuerySession(small_graph())
        text = session.explain_batch([query_ab(), query_ab_extended()])
        assert "shared plan DAG" in text
        assert "7 rooted subtrees, 4 distinct" in text
        assert "x2" in text  # each shared sub-plan lists its consumers

    def test_explain_batch_without_sharing(self):
        session = QuerySession(small_graph())
        text = session.explain_batch([query_ab()])
        assert "no shared subtrees" in text


@pytest.mark.parametrize("index", ["3hop", "tc", "tree-cover", "chain-cover"])
def test_shared_path_agrees_on_every_pooled_index(index):
    graph, batch = overlap_workload(seed=3, batch_size=6)
    session = QuerySession(graph, index=index)
    outcome = session.evaluate_many(batch)
    for query, answer in zip(batch, outcome.results):
        assert answer == evaluate_naive(query, graph)
