"""QuerySession partial-index pooling: lazy builds, domain-fingerprint
sharing, fallbacks, invalidation and warm-store rehydration."""

from repro.datasets import index_choice_workload
from repro.engine import QuerySession
from repro.graph import DataGraph
from repro.query import AttributePredicate, QueryBuilder, evaluate_naive
from repro.store import ArtifactStore, graph_fingerprint


def workload(scale=1, queries=6):
    return index_choice_workload(scale=scale, queries=queries)


def chain_with_wide_apex(length=2000):
    """A chain whose rare-label apex reaches *everything*.

    The label posting lists are tiny (one ``q``, one ``r``), so costing
    picks the partial arm — but the apex's descendant cone is the whole
    graph, so the footprint budget blows and execution must fall back.
    """
    graph = DataGraph()
    graph.add_node(label="q")
    graph.add_node(label="r")
    for __ in range(length - 2):
        graph.add_node(label="a")
    for source in range(length - 1):
        graph.add_edge(source, source + 1)
    return graph


def apex_query():
    return (
        QueryBuilder()
        .backbone("a", predicate=AttributePredicate.label("q"))
        .backbone("b", parent="a", predicate=AttributePredicate.label("r"))
        .outputs("a", "b")
        .build()
    )


class TestPartialPool:
    def test_cold_evaluation_builds_once_and_pools(self):
        graph, queries = workload()
        session = QuerySession(graph)
        results, stats = session.evaluate_with_stats(queries[0])
        assert stats.partial_builds == 1
        assert stats.partial_hits == 0
        assert stats.partial_fallbacks == 0
        assert results == evaluate_naive(queries[0], graph)
        assert session.cache_info()["partial"]["size"] == 1
        assert any(op.op == "PartialIndexBuild" for op in stats.operator_stats)
        assert "partial_build" in stats.phase_seconds

    def test_equal_footprints_share_one_build(self):
        graph, queries = workload()
        session = QuerySession(graph)
        # queries[0]=(q,r) and queries[3]=(r,q) pin the same label set,
        # hence the same seed set and the same domain fingerprint.
        session.evaluate(queries[0])
        __, stats = session.evaluate_with_stats(queries[3])
        assert stats.partial_builds == 0
        assert stats.partial_hits == 1
        assert session.cache_info()["partial"]["size"] == 1

    def test_distinct_footprints_build_separately(self):
        # Two disjoint rare-label chains off a bulk of `a` nodes: the
        # q→r and s→t footprints cannot overlap, so each builds its own
        # pooled partial index.
        graph = DataGraph()
        for __ in range(600):
            graph.add_node(label="a")
        for source in range(599):
            graph.add_edge(source, source + 1)
        for source in range(598):
            # Dense enough that the ladder leaves the near-tree rungs —
            # a full build must cost real money for partial to win.
            graph.add_edge(source, source + 2)
        for labels in ("qr", "st"):
            base = graph.num_nodes
            for position in range(30):
                graph.add_node(label=labels[position % 2])
            for position in range(29):
                graph.add_edge(base + position, base + position + 1)
            graph.add_edge(0, base)

        def pair_query(head, tail):
            return (
                QueryBuilder()
                .backbone("a", predicate=AttributePredicate.label(head))
                .backbone("b", parent="a", predicate=AttributePredicate.label(tail))
                .outputs("a", "b")
                .build()
            )

        session = QuerySession(graph)
        __, first = session.evaluate_with_stats(pair_query("q", "r"))
        __, second = session.evaluate_with_stats(pair_query("s", "t"))
        assert first.partial_builds == 1
        assert second.partial_builds == 1
        assert second.partial_hits == 0
        assert session.cache_info()["partial"]["size"] == 2

    def test_full_index_never_materializes_on_the_partial_path(self):
        graph, queries = workload()
        session = QuerySession(graph)
        session.evaluate(queries[0])
        assert session.cache_info()["indexes"]["pooled"] == 0

    def test_invalidate_clears_the_partial_pool(self):
        graph, queries = workload()
        session = QuerySession(graph)
        session.evaluate(queries[0])
        session.invalidate()
        assert session.cache_info()["partial"]["size"] == 0
        # And the session still answers correctly afterwards.
        assert session.evaluate(queries[0]) == evaluate_naive(queries[0], graph)

    def test_feedback_files_under_the_scoped_key(self):
        graph, queries = workload()
        session = QuerySession(graph)
        session.evaluate(queries[0])
        assert any(
            key.startswith("tc@partial/") for key in session.cost_profile.snapshot()
        )


class TestPartialFallbacks:
    def test_group_nodes_run_on_the_full_index(self):
        graph, queries = workload()
        session = QuerySession(graph)
        __, stats = session.evaluate_with_stats(queries[0], group_nodes=("b",))
        assert stats.partial_fallbacks == 1
        assert stats.partial_builds == 0
        assert session.cache_info()["partial"]["size"] == 0

    def test_footprint_blowout_falls_back_to_the_ladder_index(self):
        graph = chain_with_wide_apex()
        query = apex_query()
        session = QuerySession(graph)
        plan = session._plan_for(query)
        assert plan.compiled.physical.index_scope == "partial"
        results, stats = session.evaluate_with_stats(query)
        assert stats.partial_fallbacks == 1
        assert stats.partial_builds == 0
        assert results == evaluate_naive(query, graph)
        # The fallback pooled the *ladder* index, not the partial inner.
        assert session.cache_info()["indexes"]["pooled"] == 1
        assert session.cache_info()["partial"]["size"] == 0

    def test_blowout_feedback_records_the_index_actually_used(self):
        graph = chain_with_wide_apex()
        session = QuerySession(graph)
        session.evaluate(apex_query())
        keys = list(session.cost_profile.snapshot())
        assert keys and all("@" not in key for key in keys)

    def test_batch_evaluation_routes_partial_plans(self):
        graph, queries = workload()
        session = QuerySession(graph, result_cache_size=0)
        batch = session.evaluate_many(queries[:3])
        for query, results in zip(queries[:3], batch.results):
            assert results == evaluate_naive(query, graph)
        assert batch.stats.partial_builds + batch.stats.partial_hits >= 3


class TestPartialPersistence:
    def test_partial_pool_round_trips_through_the_store(self, tmp_path):
        graph, queries = workload()
        store = ArtifactStore(tmp_path / "warm")
        cold = QuerySession(graph, store=store)
        expected = cold.evaluate(queries[0])
        persisted = cold.persist()
        assert persisted["partial_indexes"] == 1
        assert "partial-indexes" in store.kinds(graph_fingerprint(graph))

        warm = QuerySession(graph, store=store)
        # queries[3] shares queries[0]'s footprint but not its result-
        # cache key, so the answer must come through the rehydrated pool.
        __, stats = warm.evaluate_with_stats(queries[3])
        assert warm.store_rehydrated.get("partial_indexes") == 1
        assert stats.partial_hits == 1
        assert stats.partial_builds == 0
        assert warm.evaluate(queries[0]) == expected

    def test_codegen_source_is_persisted(self, tmp_path):
        graph, queries = workload()
        store = ArtifactStore(tmp_path / "warm")
        session = QuerySession(graph, store=store, codegen=True)
        # A full-scope query (bulk labels) so codegen actually compiles.
        query = (
            QueryBuilder()
            .backbone("a", predicate=AttributePredicate.label("a"))
            .backbone("b", parent="a", predicate=AttributePredicate.label("b"))
            .outputs("a")
            .build()
        )
        __, stats = session.evaluate_with_stats(query)
        assert stats.codegen_misses == 1
        persisted = session.persist()
        assert persisted["codegen_src"] == 1
        kinds = store.kinds(graph_fingerprint(graph))
        assert "codegen-src" in kinds
        sources = store.load(graph_fingerprint(graph), "codegen-src")
        assert all("def " in source for source in sources.values())
