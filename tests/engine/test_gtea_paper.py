"""GTEA against the paper's running example (Examples 9-12)."""

from repro.engine import GTEA
from repro.engine.prime import compute_prime_subtree, shrink_prime_subtree
from repro.engine.prune import PruningContext, prune_downward, prune_upward
from repro.query import candidate_nodes
from repro.reachability import build_reachability
from tests.paper_fixtures import FIG2_ANSWER, fig2_graph, fig2_query, v


def _mats(graph, query):
    return {u: candidate_nodes(graph, query, u) for u in query.nodes}


class TestExample9PruneDownward:
    def test_downward_pruning_matches_paper(self):
        graph, query = fig2_graph(), fig2_query()
        reach = build_reachability(graph, "3hop")
        context = PruningContext(graph, query, reach)
        mats = prune_downward(context, _mats(graph, query))
        assert set(mats["u2"]) == {v(3), v(8)}
        assert set(mats["u3"]) == {v(3), v(5)}
        assert set(mats["u7"]) == {v(6), v(7)}
        assert set(mats["u1"]) == {v(1), v(2), v(4)}

    def test_predicate_leaf_mats_untouched(self):
        graph, query = fig2_graph(), fig2_query()
        reach = build_reachability(graph, "3hop")
        context = PruningContext(graph, query, reach)
        mats = prune_downward(context, _mats(graph, query))
        assert set(mats["u10"]) == {v(9), v(10), v(13), v(15)}
        assert set(mats["u5"]) == {v(13)}


class TestExample10PruneUpward:
    def test_upward_keeps_supported_candidates(self):
        graph, query = fig2_graph(), fig2_query()
        reach = build_reachability(graph, "3hop")
        context = PruningContext(graph, query, reach)
        mats = prune_downward(context, _mats(graph, query))
        prime = compute_prime_subtree(query, mats)
        assert prime == ["u1", "u2", "u3", "u4"]
        refined = prune_upward(context, mats, prime)
        # Example 10: mat(u1) reaches v3, v8 and v5 -> nothing removed.
        assert set(refined["u2"]) == {v(3), v(8)}
        assert set(refined["u3"]) == {v(3), v(5)}
        assert set(refined["u4"]) == {v(11), v(12), v(14)}


class TestExample11ShrunkPrime:
    def test_shrunk_prime_subtree(self):
        graph, query = fig2_graph(), fig2_query()
        reach = build_reachability(graph, "3hop")
        context = PruningContext(graph, query, reach)
        mats = prune_downward(context, _mats(graph, query))
        prime = compute_prime_subtree(query, mats)
        mats = prune_upward(context, mats, prime)
        fragments = shrink_prime_subtree(query, prime, mats)
        # All four prime nodes have |mat| > 1 in our reconstruction, so
        # the shrunk subtree is one fragment rooted at u1.
        assert fragments == [["u1", "u2", "u3", "u4"]]


class TestFullPipeline:
    def test_fig2_answer(self):
        graph, query = fig2_graph(), fig2_query()
        assert GTEA(graph).evaluate(query) == FIG2_ANSWER

    def test_stats_populated(self):
        graph, query = fig2_graph(), fig2_query()
        results, stats = GTEA(graph).evaluate_with_stats(query)
        assert results == FIG2_ANSWER
        assert stats.result_count == len(FIG2_ANSWER)
        assert stats.input_nodes > 0
        assert stats.matching_graph_nodes > 0
        assert stats.intermediate_cost == 2 * (
            stats.matching_graph_nodes + stats.matching_graph_edges
        )
        assert set(stats.phase_seconds) >= {
            "candidates", "prune_downward", "prune_upward",
            "matching_graph", "collect_results",
        }

    def test_engine_reuse_across_queries(self):
        graph = fig2_graph()
        engine = GTEA(graph)
        assert engine.evaluate(fig2_query()) == FIG2_ANSWER
        assert engine.evaluate(fig2_query()) == FIG2_ANSWER  # idempotent

    def test_example12_maximal_matching_graph(self):
        """With u2, u3, u4 as outputs the graph has v1's two branch lists."""
        from repro.query import QueryBuilder

        graph = fig2_graph()
        query = fig2_query()
        # Rebuild with three outputs as in Example 12.
        from repro.query import query_from_dict, query_to_dict

        spec = query_to_dict(query)
        spec["outputs"] = ["u2", "u3", "u4"]
        query3 = query_from_dict(spec)
        engine = GTEA(graph)
        results = engine.evaluate(query3)
        # Project back to (u2, u4): must equal the paper answer.
        assert {(a, c) for a, _, c in results} == FIG2_ANSWER
        # u3-images are v3 and v5 only.
        assert {b for _, b, _ in results} == {v(3), v(5)}
