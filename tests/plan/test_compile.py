"""Unit tests of the query compiler: normalize → logical → physical."""

import pytest

from repro.graph import DataGraph
from repro.plan import (
    CompiledPlan,
    build_logical_plan,
    build_physical_plan,
    choose_index,
    compile_query,
    estimate_candidates,
    normalize,
)
from repro.query import AttributePredicate, QueryBuilder
from tests.paper_fixtures import fig2_graph, fig2_query, fig4_q3, fig4_query


def chain_graph(labels="aabbcc"):
    edges = [(i, i + 1) for i in range(len(labels) - 1)]
    return DataGraph.from_edges(labels, edges)


def simple_query():
    return (
        QueryBuilder()
        .backbone("r", label="a")
        .backbone("x", parent="r", label="b")
        .predicate("p", parent="x", label="c")
        .outputs("r", "x")
        .build()
    )


def unsatisfiable_fs_query():
    """fs(r) = p & !p over one predicate child: Theorem-1 unsat."""
    return (
        QueryBuilder()
        .backbone("r", label="a")
        .predicate("p", parent="r", label="b")
        .structural("r", "p & !p")
        .outputs("r")
        .build()
    )


def unsatisfiable_backbone_query():
    """A backbone node whose attribute predicate is contradictory."""
    contradiction = AttributePredicate(
        [("label", "=", "b"), ("label", "!=", "b")]
    )
    return (
        QueryBuilder()
        .backbone("r", label="a")
        .backbone("x", parent="r", predicate=contradiction)
        .outputs("r", "x")
        .build()
    )


class TestNormalizePhase:
    def test_untouched_query_reports_no_rewrites(self):
        normalized = normalize(simple_query())
        assert normalized.satisfiable
        assert not normalized.changed
        assert normalized.rewritten is normalized.original
        assert normalized.output_mapping == {"r": "r", "x": "x"}

    def test_unsatisfiable_fs_detected(self):
        normalized = normalize(unsatisfiable_fs_query())
        assert not normalized.satisfiable
        assert any("Theorem 1" in note for note in normalized.notes)

    def test_unsatisfiable_backbone_attribute_detected(self):
        normalized = normalize(unsatisfiable_backbone_query())
        assert not normalized.satisfiable
        assert any("backbone" in note for note in normalized.notes)

    def test_fig4_minimizes_to_q3(self):
        """Paper Example 6: Q1 with fs(u1)=u2 minimizes to Q3."""
        normalized = normalize(fig4_query("q1", fs_u1="u2"))
        assert normalized.changed
        assert set(normalized.rewritten.nodes) == set(fig4_q3().nodes)
        assert normalized.removed_nodes == ("u2", "u4", "u5", "u8")
        assert normalized.output_mapping == {"u3": "u3"}

    def test_fig2_drops_subsumed_u8(self):
        """u8 ⊴ u4 (both D1 AD children of u3): u8 is redundant."""
        normalized = normalize(fig2_query())
        assert normalized.removed_nodes == ("u8",)

    def test_minimize_false_skips_algorithm1(self):
        normalized = normalize(fig2_query(), minimize=False)
        assert normalized.removed_nodes == ()
        assert normalized.satisfiable


class TestLogicalPhase:
    def test_sources_and_estimates(self):
        graph = chain_graph()
        query = simple_query()
        logical = build_logical_plan(graph, normalize(query))
        by_node = {source.node_id: source for source in logical.sources}
        assert by_node["r"].source == "label-index"
        assert by_node["r"].estimate == 2
        assert by_node["p"].kind == "predicate"
        assert logical.total_candidate_estimate == 6

    def test_wildcard_predicate_is_full_scan(self):
        graph = chain_graph()
        query = (
            QueryBuilder()
            .backbone("r")  # wildcard
            .backbone("x", parent="r", label="b")
            .outputs("r", "x")
            .build()
        )
        logical = build_logical_plan(graph, normalize(query))
        by_node = {source.node_id: source for source in logical.sources}
        assert by_node["r"].source == "full-scan"
        assert by_node["r"].estimate == graph.num_nodes

    def test_downward_order_visits_children_before_parents(self):
        graph = fig2_graph()
        query = fig2_query()
        logical = build_logical_plan(graph, normalize(query))
        position = {node: i for i, node in enumerate(logical.downward_order)}
        for child, parent in logical.query.parent.items():
            assert position[child] < position[parent]
        assert set(logical.downward_order) == set(logical.query.nodes)

    def test_downward_order_prefers_cheap_subtrees(self):
        graph = DataGraph.from_edges("abbbc", [(0, 1), (0, 4), (1, 2)])
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .backbone("many", parent="r", label="b")   # 3 candidates
            .backbone("few", parent="r", label="c")    # 1 candidate
            .outputs("r", "many", "few")
            .build()
        )
        logical = build_logical_plan(graph, normalize(query))
        order = list(logical.downward_order)
        assert order.index("few") < order.index("many")

    def test_obligations_cover_both_phases(self):
        logical = build_logical_plan(fig2_graph(), normalize(fig2_query()))
        phases = {obligation.phase for obligation in logical.obligations}
        assert phases == {"downward", "upward"}


class TestPhysicalPhase:
    def test_auto_index_follows_cost_ladder(self):
        graph = chain_graph()
        normalized = normalize(simple_query())
        logical = build_logical_plan(graph, normalized)
        physical = build_physical_plan(graph, normalized, logical)
        from repro.graph import graph_stats

        assert physical.index_name == choose_index(graph_stats(graph))

    def test_pinned_index_respected(self):
        graph = chain_graph()
        normalized = normalize(simple_query())
        logical = build_logical_plan(graph, normalized)
        physical = build_physical_plan(
            graph, normalized, logical, index="3hop"
        )
        assert physical.index_name == "3hop"
        assert "pinned" in physical.index_reason

    def test_unknown_pinned_index_rejected(self):
        graph = chain_graph()
        with pytest.raises(ValueError, match="unknown index"):
            compile_query(graph, simple_query(), index="nosuchindex")

    def test_unsatisfiable_compiles_to_constant_empty(self):
        graph = chain_graph()
        plan = compile_query(graph, unsatisfiable_fs_query())
        assert plan.unsatisfiable
        assert plan.physical.executor == "constant-empty"
        assert plan.physical.cost is None

    def test_non_conjunctive_stays_on_gtea(self):
        plan = compile_query(fig2_graph(), fig2_query())
        assert plan.physical.executor == "gtea"
        assert "OR/NOT" in plan.physical.cost.reason

    def test_low_selectivity_conjunctive_routes_to_baseline(self):
        graph = chain_graph("ab" * 10)  # DAG, 20 nodes
        query = (
            QueryBuilder()
            .backbone("r")                 # wildcard: ~20 candidates
            .backbone("x", parent="r")     # wildcard: ~20 candidates
            .backbone("y", parent="x")     # wildcard: ~20 candidates
            .outputs("r", "x", "y")
            .build()
        )
        plan = compile_query(graph, query)
        assert plan.physical.executor == "twigstackd"
        assert plan.physical.cost.baseline_cost < plan.physical.cost.gtea_cost

    def test_cyclic_graph_never_routes_to_baseline(self):
        graph = chain_graph("ab" * 10)
        graph.add_edge(graph.num_nodes - 1, 0)  # make it cyclic
        query = (
            QueryBuilder()
            .backbone("r")
            .backbone("x", parent="r")
            .backbone("y", parent="x")
            .outputs("r", "x", "y")
            .build()
        )
        plan = compile_query(graph, query)
        assert plan.physical.executor == "gtea"
        assert "cyclic" in plan.physical.cost.reason


class TestCompiledPlan:
    def test_explain_shows_all_three_stages(self):
        plan = compile_query(fig2_graph(), fig2_query())
        text = plan.explain()
        assert "== normalize ==" in text
        assert "== logical plan ==" in text
        assert "== physical plan ==" in text
        assert "minimized: 10 -> 9 nodes" in text

    def test_compile_is_pure_wrt_query(self):
        query = fig2_query()
        before = set(query.nodes)
        compile_query(fig2_graph(), query)
        assert set(query.nodes) == before  # queries are immutable

    def test_estimate_candidates_upper_bounds_reality(self):
        from repro.query import candidate_nodes

        graph = fig2_graph()
        query = fig2_query()
        estimates = estimate_candidates(graph, query)
        for node_id in query.nodes:
            actual = len(candidate_nodes(graph, query, node_id))
            assert estimates[node_id] >= actual

    def test_compiled_plan_is_frozen(self):
        plan = compile_query(fig2_graph(), fig2_query())
        assert isinstance(plan, CompiledPlan)
        with pytest.raises(AttributeError):
            plan.physical = None


class TestMinimizationExposedUnsatisfiability:
    """Regression: found by the randomized differential harness.

    ``fs(n1) = pc_c & !ad_c`` is propositionally satisfiable (Theorem 1
    treats child variables as independent) but structurally empty: a PC
    child with label c entails an AD descendant with label c.
    Minimization folds the containment in and collapses ``fs`` to FALSE
    — which must surface as a constant-empty plan, not as a rewritten
    query whose now-leaf node silently matches everything.
    """

    @staticmethod
    def pc_entails_ad_query():
        return (
            QueryBuilder()
            .backbone("n0", label="d")
            .predicate("n1", parent="n0", label="a")
            .predicate("n2", parent="n1", edge="pc", label="c")
            .predicate("n3", parent="n1", edge="ad", label="c")
            .structural("n0", "n1")
            .structural("n1", "n2 & !n3")
            .outputs("n0")
            .build()
        )

    def test_normalize_recheck_marks_plan_unsatisfiable(self):
        plan = compile_query(chain_graph("dac"), self.pc_entails_ad_query())
        assert plan.unsatisfiable
        assert plan.physical.executor == "constant-empty"
        assert any("exposed unsatisfiability" in note for note in plan.normalized.notes)

    def test_evaluation_matches_oracle(self):
        from repro.engine import GTEA
        from repro.query import evaluate_naive

        graph = DataGraph.from_edges("dacdc", [(0, 1), (1, 2), (3, 4)])
        query = self.pc_entails_ad_query()
        assert evaluate_naive(query, graph) == set()
        assert GTEA(graph).evaluate(query) == set()
        assert GTEA(graph, optimize=False).evaluate(query) == set()

    def test_prune_downward_respects_constant_false_leaf_fext(self):
        """The executor-level half of the fix, exercised directly: a leaf
        whose ``fs`` collapsed to FALSE must refine to the empty set."""
        from repro.engine import GTEA
        from repro.engine.prune import PruningContext, downward_step, prune_downward

        graph = chain_graph("aab")
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .backbone("x", parent="r", label="b")
            .structural("x", "0")
            .outputs("r")
            .build()
        )
        context = PruningContext(graph, query, GTEA(graph).reachability)
        mats = {"r": [0, 1], "x": [2]}
        refined = prune_downward(context, mats)
        assert refined["x"] == []
        assert refined["r"] == []
        assert downward_step(context, "x", [2], {}) == []
