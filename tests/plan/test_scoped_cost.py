"""Per-query index costing: the (index, scope) arm race of
:func:`repro.plan.cost.choose_scoped_index` and its surface in the
physical plan."""

import pytest

from repro.graph import GraphStats, graph_stats
from repro.plan import (
    PARTIAL_FOOTPRINT_FRACTION,
    CostProfile,
    IndexChoice,
    choose_scoped_index,
    compile_query,
    index_build_units,
    scoped_index_key,
)
from repro.plan.feedback import MIN_SAMPLES
from repro.plan.logical import CandidateSource
from tests.plan.test_feedback import fill, gtea_record


def stats_for(num_nodes, num_edges, *, is_dag=True):
    return GraphStats(
        num_nodes=num_nodes,
        num_edges=num_edges,
        num_labels=3,
        num_roots=1,
        max_depth=5,
        avg_depth=3.0,
        is_dag=is_dag,
    )


def label_source(node_id="a", estimate=20):
    return CandidateSource(
        node_id=node_id,
        kind="backbone",
        source="label-index",
        predicate="label = 'q'",
        estimate=estimate,
    )


def scan_source(node_id="a"):
    return CandidateSource(
        node_id=node_id,
        kind="backbone",
        source="full-scan",
        predicate="kind = 1",
        estimate=10_000,
    )


BIG = stats_for(10_000, 25_000)


class TestScopedKey:
    def test_full_scope_keeps_the_bare_name(self):
        assert scoped_index_key("tc", "full") == "tc"

    def test_partial_scope_appends_the_tag(self):
        assert scoped_index_key("tc", "partial") == "tc@partial"
        assert IndexChoice("3hop", "partial", "why").scoped_name == "3hop@partial"


class TestBuildUnits:
    def test_tc_is_quadratic_and_traversal_indexes_linear(self):
        n, e = 10_000, 25_000
        assert index_build_units("tc", n, e) > index_build_units("3hop", n, e)
        assert index_build_units("interval", n, e) < index_build_units("3hop", n, e)
        assert index_build_units("tree-cover", n, e) == n + e


class TestScopedChoiceGates:
    def test_selective_label_sources_pick_partial(self):
        choice = choose_scoped_index(BIG, [label_source(estimate=20)])
        assert choice.scope == "partial"
        assert choice.index_name == "tc"  # footprint fits the tc rung
        assert choice.footprint_estimate is not None
        assert choice.footprint_estimate <= BIG.num_nodes

    def test_tiny_graphs_stay_full(self):
        tiny = stats_for(100, 150)
        choice = choose_scoped_index(tiny, [label_source(estimate=2)])
        assert choice.scope == "full"

    def test_full_scan_source_disqualifies_partial(self):
        choice = choose_scoped_index(BIG, [label_source(), scan_source("b")])
        assert choice.scope == "full"

    def test_no_sources_stays_full(self):
        assert choose_scoped_index(BIG, []).scope == "full"

    def test_fat_footprint_stays_full(self):
        fat = label_source(estimate=int(BIG.num_nodes * PARTIAL_FOOTPRINT_FRACTION))
        choice = choose_scoped_index(BIG, [fat])
        assert choice.scope == "full"

    def test_pooled_full_index_is_free_and_wins(self):
        partial = choose_scoped_index(BIG, [label_source(estimate=20)])
        assert partial.scope == "partial"
        pooled = choose_scoped_index(
            BIG, [label_source(estimate=20)], pooled=("3hop",)
        )
        assert pooled.scope == "full"
        assert "pooled" in pooled.reason

    def test_large_footprint_promotes_the_inner_past_tc(self):
        # Footprint above the tc rung: the partial arm inherits the
        # ladder's index instead of a quadratic closure over the cone.
        huge = stats_for(100_000, 250_000)
        choice = choose_scoped_index(huge, [label_source(estimate=500)])
        assert choice.scope == "partial"
        assert choice.index_name == "3hop"


class TestScopedCalibration:
    def test_observed_slow_partial_demotes_to_full(self):
        sources = [label_source(estimate=20)]
        assert choose_scoped_index(BIG, sources).scope == "partial"
        profile = CostProfile()
        fill(profile, index_name="tc@partial", executor="gtea",
             records=gtea_record(seconds=1.0), graph_version=7, runs=MIN_SAMPLES)
        fill(profile, index_name="3hop", executor="gtea",
             records=gtea_record(seconds=1e-6), graph_version=7, runs=MIN_SAMPLES)
        demoted = choose_scoped_index(BIG, sources, profile, 7)
        assert demoted.scope == "full"
        assert "cost profile" in demoted.reason

    def test_one_sided_observations_keep_the_partial_pick(self):
        sources = [label_source(estimate=20)]
        profile = CostProfile()
        fill(profile, index_name="tc@partial", executor="gtea",
             records=gtea_record(seconds=1.0), graph_version=7, runs=MIN_SAMPLES)
        assert choose_scoped_index(BIG, sources, profile, 7).scope == "partial"


class TestPhysicalSurface:
    @pytest.fixture(scope="class")
    def workload(self):
        from repro.datasets import index_choice_workload

        return index_choice_workload(scale=1, queries=2)

    def test_partial_choice_lands_in_the_plan_and_explain(self, workload):
        graph, queries = workload
        compiled = compile_query(graph, queries[0])
        physical = compiled.physical
        assert physical.index_scope == "partial"
        assert physical.scoped_index_name == "tc@partial"
        assert physical.footprint_estimate is not None
        header = compiled.explain().splitlines()
        marker = f"[index tc/partial · footprint≈{physical.footprint_estimate}]"
        assert any(marker in line for line in header)

    def test_full_scope_explain_is_unchanged(self, workload):
        graph, __ = workload
        from repro.query import AttributePredicate, QueryBuilder

        query = (
            QueryBuilder()
            .backbone("a", predicate=AttributePredicate.label("a"))
            .backbone("b", parent="a", predicate=AttributePredicate.label("b"))
            .outputs("a")
            .build()
        )
        physical = compile_query(graph, query).physical
        assert physical.index_scope == "full"
        assert "@" not in physical.scoped_index_name
        assert "/partial" not in "\n".join(physical.explain_lines())

    def test_pooled_compile_stays_full(self, workload):
        graph, queries = workload
        physical = compile_query(graph, queries[0], pooled=("3hop",)).physical
        assert physical.index_scope == "full"
        assert "pooled" in physical.index_reason

    def test_codegen_rejects_partial_scope(self, workload):
        graph, queries = workload
        from repro.plan.codegen import CodegenError, analyze_plan

        compiled = compile_query(graph, queries[0])
        assert compiled.physical.index_scope == "partial"
        with pytest.raises(CodegenError, match="partial"):
            analyze_plan(compiled)


class TestLiveGraphAgreement:
    def test_workload_stats_actually_cross_every_gate(self):
        """The synthetic stats above must match what a real enclave
        workload produces — otherwise the gate tests drift from the
        planner's actual inputs."""
        from repro.datasets import index_choice_workload

        graph, queries = index_choice_workload(scale=1, queries=1)
        stats = graph_stats(graph)
        logical = compile_query(graph, queries[0]).logical
        choice = choose_scoped_index(stats, logical.sources)
        assert choice.scope == "partial"
        assert all(s.source == "label-index" for s in logical.sources)
