"""Cost-feedback loop: observed operator stats calibrate the planner."""

from repro.engine import OperatorStats, QuerySession
from repro.graph import DataGraph, graph_stats
from repro.plan import (
    CostProfile,
    choose_index_detail,
    estimate_candidates,
    estimate_executor,
)
from repro.plan.feedback import MIN_SAMPLES
from repro.query import AttributePredicate, QueryBuilder, evaluate_naive


def dag_graph():
    return DataGraph.from_edges(
        "aabbcc", [(0, 2), (0, 3), (1, 3), (2, 4), (3, 5)]
    )


def conjunctive_query():
    return (
        QueryBuilder()
        .backbone("q_root", predicate=AttributePredicate.label("a"))
        .backbone("q_kid", parent="q_root", predicate=AttributePredicate.label("b"))
        .outputs("q_root")
        .build()
    )


def gtea_record(seconds, volume=10):
    return [
        OperatorStats(
            op="CandidateScan",
            target=None,
            input_size=0,
            output_size=volume,
            seconds=seconds / 2,
            index_lookups=0,
            index_entries=0,
        ),
        OperatorStats(
            op="DownwardPrune",
            target="q_root",
            input_size=volume,
            output_size=volume,
            seconds=seconds / 2,
            index_lookups=1,
            index_entries=2,
        ),
    ]


def baseline_record(seconds, elements=100):
    return [
        OperatorStats(
            op="BaselineDelegate",
            target=None,
            input_size=elements,
            output_size=1,
            seconds=seconds,
            index_lookups=0,
            index_entries=0,
        )
    ]


def fill(profile, *, index_name, executor, records, graph_version=0, runs=MIN_SAMPLES):
    for _ in range(runs):
        profile.record(
            index_name=index_name,
            executor=executor,
            graph_version=graph_version,
            operator_stats=records,
        )


class TestCostProfile:
    def test_rates_require_min_samples(self):
        profile = CostProfile()
        fill(profile, index_name="tc", executor="gtea",
             records=gtea_record(1e-3), runs=MIN_SAMPLES - 1)
        assert profile.observed_rate("tc", 0) is None
        profile.record(index_name="tc", executor="gtea", graph_version=0,
                       operator_stats=gtea_record(1e-3))
        assert profile.observed_rate("tc", 0) is not None

    def test_rates_are_keyed_by_graph_version(self):
        profile = CostProfile()
        fill(profile, index_name="tc", executor="gtea",
             records=gtea_record(1e-3), graph_version=1)
        assert profile.observed_rate("tc", 1) is not None
        assert profile.observed_rate("tc", 2) is None

    def test_empty_records_are_ignored(self):
        profile = CostProfile()
        profile.record(index_name="tc", executor="gtea", graph_version=0,
                       operator_stats=[])
        assert profile.executions() == 0

    def test_old_version_keys_are_pruned_on_newer_records(self):
        profile = CostProfile()
        fill(profile, index_name="tc", executor="gtea",
             records=gtea_record(1e-3), graph_version=1)
        fill(profile, index_name="tc", executor="gtea",
             records=gtea_record(1e-3), graph_version=5)
        keys = list(profile.snapshot())
        # Only the latest and the immediately preceding version survive.
        assert all(key.endswith("v5") or key.endswith("v4") for key in keys)
        assert profile.observed_rate("tc", 1) is None

    def test_snapshot_summarizes_keys(self):
        profile = CostProfile()
        fill(profile, index_name="tc", executor="gtea", records=gtea_record(1e-3))
        snapshot = profile.snapshot()
        assert "tc/gtea/v0" in snapshot
        assert snapshot["tc/gtea/v0"]["executions"] == MIN_SAMPLES


class TestExecutorCalibration:
    def test_profile_flips_executor_choice(self):
        """A profile built from observed stats changes the pick.

        The abstract model prefers GTEA for this selective query; the
        observed rates say GTEA is slow per candidate while the baseline
        sweeps are cheap per element, so the calibrated inequality picks
        TwigStackD for the same query.
        """
        graph = dag_graph()
        query = conjunctive_query()
        stats = graph_stats(graph)
        estimates = estimate_candidates(graph, query)

        default = estimate_executor(stats, query, estimates)
        assert default.executor == "gtea" and not default.calibrated

        profile = CostProfile()
        fill(profile, index_name="tc", executor="gtea",
             records=gtea_record(seconds=1.0), graph_version=graph.version)
        fill(profile, index_name="tc", executor="twigstackd",
             records=baseline_record(seconds=1e-9), graph_version=graph.version)
        calibrated = estimate_executor(
            stats, query, estimates,
            profile=profile, index_name="tc", graph_version=graph.version,
        )
        assert calibrated.calibrated
        assert calibrated.executor == "twigstackd"
        assert calibrated.executor != default.executor

    def test_calibration_needs_both_arms(self):
        graph = dag_graph()
        query = conjunctive_query()
        stats = graph_stats(graph)
        estimates = estimate_candidates(graph, query)
        profile = CostProfile()
        fill(profile, index_name="tc", executor="gtea",
             records=gtea_record(seconds=1.0), graph_version=graph.version)
        # No baseline observations: the abstract constants stay in force.
        estimate = estimate_executor(
            stats, query, estimates,
            profile=profile, index_name="tc", graph_version=graph.version,
        )
        assert not estimate.calibrated and estimate.executor == "gtea"

    def test_inadmissible_routes_stay_gtea_even_when_calibrated(self):
        graph = DataGraph.from_edges("ab", [(0, 1), (1, 0)])  # cyclic
        query = conjunctive_query()
        stats = graph_stats(graph)
        estimates = estimate_candidates(graph, query)
        profile = CostProfile()
        fill(profile, index_name="tc", executor="gtea",
             records=gtea_record(seconds=1.0), graph_version=graph.version)
        fill(profile, index_name="tc", executor="twigstackd",
             records=baseline_record(seconds=1e-9), graph_version=graph.version)
        estimate = estimate_executor(
            stats, query, estimates,
            profile=profile, index_name="tc", graph_version=graph.version,
        )
        assert estimate.executor == "gtea"  # DAG-only baseline


class TestIndexOverride:
    def test_observed_cheaper_index_overrides_ladder(self):
        graph = dag_graph()
        stats = graph_stats(graph)
        assert choose_index_detail(stats)[0] == "tc"  # tiny-graph rung

        profile = CostProfile()
        fill(profile, index_name="tc", executor="gtea",
             records=gtea_record(seconds=1.0), graph_version=graph.version)
        fill(profile, index_name="3hop", executor="gtea",
             records=gtea_record(seconds=1e-6), graph_version=graph.version)
        name, reason = choose_index_detail(stats, profile, graph.version)
        assert name == "3hop"
        assert "cost profile" in reason

    def test_unobserved_ladder_pick_is_not_overridden(self):
        graph = dag_graph()
        stats = graph_stats(graph)
        profile = CostProfile()
        fill(profile, index_name="3hop", executor="gtea",
             records=gtea_record(seconds=1e-6), graph_version=graph.version)
        # The ladder pick (tc) has no observations: the heuristic wins.
        assert choose_index_detail(stats, profile, graph.version)[0] == "tc"


class TestSessionFeedback:
    def test_session_records_observed_operator_stats(self):
        graph = dag_graph()
        session = QuerySession(graph)
        assert session.cost_profile.executions() == 0
        session.evaluate(conjunctive_query())
        assert session.cost_profile.executions() == 1
        snapshot = session.cost_profile.snapshot()
        assert any("/gtea/" in key for key in snapshot)

    def test_session_profile_changes_subsequent_compilation(self):
        """End to end: observations steer a *later* compilation."""
        graph = dag_graph()
        session = QuerySession(graph)
        query = conjunctive_query()
        for _ in range(MIN_SAMPLES):
            session.evaluate(query)
            session.result_cache.clear()  # force re-execution
        # Pretend the baseline was also observed, and measured far
        # cheaper per element than GTEA's real observed rate.
        fill(session.cost_profile, index_name=session.resolved_index,
             executor="twigstackd", records=baseline_record(seconds=1e-12),
             graph_version=graph.version)
        fresh = (
            QueryBuilder()
            .backbone("q_root", predicate=AttributePredicate.label("b"))
            .backbone("q_kid", parent="q_root", predicate=AttributePredicate.label("c"))
            .outputs("q_root")
            .build()
        )
        plan = session.plan(fresh)
        assert plan.compiled.physical.cost.calibrated
        assert plan.compiled.physical.executor == "twigstackd"
        assert "calibrated from observed stats" in session.explain(fresh)
        # The calibrated route still answers correctly.
        assert session.evaluate(fresh) == evaluate_naive(fresh, graph)

    def test_group_node_evaluations_do_not_pollute_the_profile(self):
        # Group evaluation runs the GTEA pipeline over the original
        # query regardless of the routed executor; recording it would
        # file pipeline stats under the wrong calibration arm.
        graph = dag_graph()
        session = QuerySession(graph)
        session.evaluate(conjunctive_query(), group_nodes=("q_kid",))
        assert session.cost_profile.executions() == 0

    def test_shared_batch_executions_are_filed_separately(self):
        graph = dag_graph()
        session = QuerySession(graph)
        q1 = conjunctive_query()
        q2 = (
            QueryBuilder()
            .backbone("q_top", predicate=AttributePredicate.label("a"))
            .backbone("q_root", parent="q_top", predicate=AttributePredicate.label("a"))
            .backbone("q_kid", parent="q_root", predicate=AttributePredicate.label("b"))
            .outputs("q_top")
            .build()
        )
        session.evaluate_many([q1, q2], share=True)
        snapshot = session.cost_profile.snapshot()
        assert any("/gtea-shared/" in key for key in snapshot)
        # The shared key never feeds the executor calibration.
        assert session.cost_profile.executor_costs(
            session.resolved_index, graph.version
        ) is None

    def test_compiled_runs_file_under_the_codegen_key(self):
        # A specialized plan function skips the operator pipeline, so
        # its timing is not an observation of the interpreted executor;
        # it must land under "gtea-codegen", never "gtea".
        graph = dag_graph()
        session = QuerySession(graph, codegen="auto")
        query = conjunctive_query()
        answer, stats = session.evaluate_with_stats(query)
        assert answer == evaluate_naive(query, graph)
        assert stats.codegen_fallbacks == 0, "query should have compiled"
        assert stats.codegen_hits + stats.codegen_misses == 1
        snapshot = session.cost_profile.snapshot()
        assert any("/gtea-codegen/" in key for key in snapshot)
        assert not any("/gtea/" in key for key in snapshot)

    def test_compiled_prune_loop_times_are_isolated_per_phase(self):
        """The generated prune loop's wall time files as ``CodegenPrune``.

        A per-phase record under the ``"gtea-codegen"`` key lets the
        snapshot compare the specialized loop against the interpreted
        ``DownwardPrune`` arm — but it must stay inside that excluded
        key: neither the interpreted rate nor the executor calibration
        may move because a compiled prune loop was timed.
        """
        graph = dag_graph()
        session = QuerySession(graph, codegen="auto")
        query = conjunctive_query()
        answer, stats = session.evaluate_with_stats(query)
        assert answer == evaluate_naive(query, graph)
        assert stats.codegen_fallbacks == 0, "query should have compiled"
        state = session.cost_profile.export_state()
        codegen = [key for key in state["keys"] if key["executor"] == "gtea-codegen"]
        assert len(codegen) == 1
        operators = codegen[0]["operators"]
        assert set(operators) == {"CodegenExecute", "CodegenPrune"}
        assert operators["CodegenPrune"]["runs"] == 1
        assert (
            0.0
            <= operators["CodegenPrune"]["seconds"]
            <= operators["CodegenExecute"]["seconds"]
        )
        # Isolation: the phase record never reaches the interpreted arms.
        assert session.cost_profile.observed_rate(
            session.resolved_index, graph.version
        ) is None
        assert session.cost_profile.executor_costs(
            session.resolved_index, graph.version
        ) is None

    def test_codegen_runs_never_calibrate_the_interpreted_arms(self):
        """Regression: compiled timings used to pollute GTEA's rates.

        A compiled run measures specialized code; folding it into the
        interpreted executor's calibration skews every later
        gtea-vs-twigstackd routing decision.  Like "gtea-parallel" and
        "gtea-shared", the codegen key must stay out of executor_costs
        and preferred_index.
        """
        graph = dag_graph()
        interpreted = QuerySession(graph)
        query = conjunctive_query()
        for _ in range(MIN_SAMPLES):
            interpreted.evaluate(query)
            interpreted.result_cache.clear()
        gtea_keys = {
            key: value
            for key, value in interpreted.cost_profile.snapshot().items()
            if "/gtea/" in key
        }
        assert gtea_keys, "interpreted runs should calibrate the gtea arm"

        # Feed the same profile a pile of absurdly fast compiled runs.
        compiled = QuerySession(graph, codegen="auto")
        compiled.cost_profile = interpreted.cost_profile
        for _ in range(MIN_SAMPLES * 2):
            compiled.evaluate(query)
            compiled.result_cache.clear()
        after = {
            key: value
            for key, value in compiled.cost_profile.snapshot().items()
            if "/gtea/" in key
        }
        assert after == gtea_keys, (
            "compiled executions must not move the interpreted estimates"
        )
        assert compiled.cost_profile.executor_costs(
            compiled.resolved_index, graph.version
        ) is None, "gtea-codegen must not feed executor calibration"

    def test_profile_survives_invalidation_but_is_version_scoped(self):
        graph = dag_graph()
        session = QuerySession(graph)
        session.evaluate(conjunctive_query())
        version = graph.version
        graph.add_node(label="z")  # bump the version
        session.evaluate(conjunctive_query())
        assert session.cost_profile.executions() == 2
        # Both versions keep their keys; consultation is version-scoped.
        keys = list(session.cost_profile.snapshot())
        assert any(key.endswith(f"v{version}") for key in keys)
        assert any(key.endswith(f"v{graph.version}") for key in keys)


class TestScopedProfileKeys:
    """Regression: the index override must compare only the executor arm
    being costed, and scope-tagged keys must never become ladder picks."""

    def test_scoped_names_never_win_preferred_index(self):
        profile = CostProfile()
        fill(profile, index_name="tc@partial", executor="gtea",
             records=gtea_record(seconds=1e-9))
        fill(profile, index_name="3hop", executor="gtea",
             records=gtea_record(seconds=1e-3))
        # The partial key is orders of magnitude cheaper, but a scoped
        # name is not a full-index offer: the bare key must win.
        best = profile.preferred_index(0)
        assert best is not None and best[0] == "3hop"

    def test_scoped_only_observations_yield_no_preference(self):
        profile = CostProfile()
        fill(profile, index_name="tc@partial", executor="gtea",
             records=gtea_record(seconds=1e-9))
        assert profile.preferred_index(0) is None

    def test_preferred_index_is_scoped_to_the_costed_executor(self):
        profile = CostProfile()
        fill(profile, index_name="interval", executor="gtea-shared",
             records=gtea_record(seconds=1e-9))
        fill(profile, index_name="3hop", executor="gtea",
             records=gtea_record(seconds=1e-3))
        # The dirt-cheap interval rate lives under the shared-batch arm;
        # costing the plain gtea arm must not see it.
        best = profile.preferred_index(0, executor="gtea")
        assert best is not None and best[0] == "3hop"
        shared = profile.preferred_index(0, executor="gtea-shared")
        assert shared is not None and shared[0] == "interval"

    def test_ladder_override_ignores_other_executor_arms(self):
        graph = dag_graph()
        stats = graph_stats(graph)
        profile = CostProfile()
        fill(profile, index_name="tc", executor="gtea",
             records=gtea_record(seconds=1e-3), graph_version=graph.version)
        fill(profile, index_name="3hop", executor="gtea-codegen",
             records=gtea_record(seconds=1e-9), graph_version=graph.version)
        # 3hop looks unbeatable, but only under the codegen arm: the
        # ladder pick must survive.
        name, __ = choose_index_detail(stats, profile, graph.version)
        assert name == "tc"

    def test_observed_rate_reads_scoped_keys(self):
        profile = CostProfile()
        fill(profile, index_name="tc@partial", executor="gtea",
             records=gtea_record(seconds=1e-3))
        assert profile.observed_rate("tc@partial", 0) is not None
        assert profile.observed_rate("tc", 0) is None
