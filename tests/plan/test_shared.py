"""Unit tests of the batch compiler: SharedPlanDAG construction."""

from repro.graph import DataGraph
from repro.plan import compile_batch, compile_query
from repro.query import AttributePredicate, QueryBuilder


def chain_graph(labels="aabbcc"):
    edges = [(i, i + 1) for i in range(len(labels) - 1)]
    return DataGraph.from_edges(labels, edges)


def query_ab():
    return (
        QueryBuilder()
        .backbone("r", label="a")
        .backbone("x", parent="r", label="b")
        .predicate("p", parent="x", label="c")
        .outputs("r", "x")
        .build()
    )


def query_ab_under_root():
    return (
        QueryBuilder()
        .backbone("t", label="c")
        .backbone("u", parent="t", label="a")
        .backbone("v", parent="u", label="b")
        .predicate("w", parent="v", label="c")
        .outputs("t", "v")
        .build()
    )


def unsat_query():
    return (
        QueryBuilder()
        .backbone("r", label="a")
        .predicate("p", parent="r", label="b")
        .structural("r", "p & !p")
        .outputs("r")
        .build()
    )


class TestBuildSharedDag:
    def test_dedups_identical_subtrees_across_queries(self):
        batch = compile_batch(chain_graph(), [query_ab(), query_ab_under_root()])
        dag = batch.dag
        assert dag.total_occurrences == 7
        assert dag.distinct_subtrees == 4
        assert dag.shared_occurrences == 3
        shared = [subtree for subtree in dag.subtrees if subtree.shared]
        assert {len(s.occurrences) for s in shared} == {2}

    def test_topological_order_children_before_parents(self):
        batch = compile_batch(chain_graph(), [query_ab(), query_ab_under_root()])
        seen: set[str] = set()
        for subtree in batch.dag.subtrees:
            assert all(child in seen for child in subtree.children)
            seen.add(subtree.fingerprint)

    def test_exemplar_is_first_occurrence_in_batch_order(self):
        batch = compile_batch(chain_graph(), [query_ab(), query_ab_under_root()])
        for subtree in batch.dag.subtrees:
            assert subtree.exemplar == subtree.occurrences[0]

    def test_unsatisfiable_plans_do_not_participate(self):
        batch = compile_batch(chain_graph(), [query_ab(), unsat_query()])
        assert batch.plans[1].unsatisfiable
        assert batch.dag.node_fingerprints[1] == {}
        assert batch.dag.total_occurrences == 3  # query_ab only

    def test_precompiled_plans_are_reused(self):
        graph = chain_graph()
        plans = [compile_query(graph, query_ab())]
        batch = compile_batch(graph, plans=plans)
        assert batch.plans[0] is plans[0]

    def test_explain_names_consumers(self):
        batch = compile_batch(chain_graph(), [query_ab(), query_ab_under_root()])
        text = batch.explain()
        assert "q0:r" in text and "q1:u" in text
        assert "executor=" in text


class TestLogicalPlanFingerprints:
    def test_compiled_plan_exposes_subtree_fingerprints(self):
        plan = compile_query(chain_graph(), query_ab())
        fingerprints = plan.subtree_fingerprints
        assert set(fingerprints) == set(plan.query.nodes)
        assert len(set(fingerprints.values())) == 3

    def test_explain_mentions_distinct_subtrees(self):
        plan = compile_query(chain_graph(), query_ab())
        assert "3 distinct fingerprints" in plan.explain()
