"""Unit tests of the plan-codegen backend and its session wiring."""

import dataclasses

import pytest

from repro.engine import GTEA, QuerySession
from repro.engine.parallel import ParallelOptions
from repro.graph import DataGraph
from repro.plan import (
    CodegenError,
    analyze_plan,
    compile_plan,
    compile_query,
    supports_plan,
)
from repro.plan.codegen import emit_plan_source
from repro.query import QueryBuilder, evaluate_naive
from tests.paper_fixtures import fig2_graph, fig2_query


def chain_graph(labels="aabbcc"):
    edges = [(i, i + 1) for i in range(len(labels) - 1)]
    return DataGraph.from_edges(labels, edges)


def simple_query():
    return (
        QueryBuilder()
        .backbone("r", label="a")
        .backbone("x", parent="r", label="b")
        .predicate("p", parent="x", label="c")
        .outputs("r", "x")
        .build()
    )


def pc_query():
    """A query with a parent-child predicate edge (PC membership test)."""
    return (
        QueryBuilder()
        .backbone("r", label="a")
        .backbone("x", parent="r", label="b")
        .predicate("p", parent="x", edge="pc", label="c")
        .outputs("r", "x")
        .build()
    )


def unsatisfiable_query():
    """fs(r) = p & !p: Theorem-1 unsat, routed to constant-empty."""
    return (
        QueryBuilder()
        .backbone("r", label="a")
        .predicate("p", parent="r", label="b")
        .structural("r", "p & !p")
        .outputs("r")
        .build()
    )


class TestAnalyzePlan:
    def test_simple_query_steps(self):
        graph = chain_graph()
        plan = compile_query(graph, simple_query(), index="3hop")
        analysis = analyze_plan(plan)
        assert analysis.index_name == "3hop"
        assert analysis.three_hop is True
        assert analysis.root == "r"
        assert set(analysis.node_ids) == set(plan.query.nodes)
        steps = {step.node_id: step for step in analysis.steps}
        # Leaves carry fext = 1 (the paper's convention): copy steps.
        assert steps["p"].kind == "copy"
        # x's fext mentions its AD predicate child p.
        assert steps["x"].kind == "filter"
        assert steps["x"].ad_used == ("p",)
        assert steps["x"].pc_used == ()
        # r's fext mentions its backbone AD child x; x's mentions p.
        assert steps["r"].kind == "filter"
        assert steps["r"].ad_used == ("x",)
        # Under the 3-hop index, every mentioned AD child needs its
        # contour; the root is mentioned by nobody.
        assert steps["p"].needs_contour is True
        assert steps["x"].needs_contour is True
        assert steps["r"].needs_contour is False
        # label= predicates pin the candidate scan to the label posting.
        assert steps["r"].label_scan == "a"
        assert analysis.folded_steps >= 1

    def test_pc_child_uses_membership_not_contour(self):
        graph = chain_graph()
        plan = compile_query(graph, pc_query(), index="3hop")
        steps = {step.node_id: step for step in analyze_plan(plan).steps}
        assert steps["x"].pc_used == ("p",)
        assert steps["x"].ad_used == ()
        assert steps["p"].needs_contour is False

    def test_generic_index_skips_contours(self):
        graph = chain_graph()
        plan = compile_query(graph, simple_query(), index="interval")
        analysis = analyze_plan(plan)
        assert analysis.three_hop is False
        assert not any(step.needs_contour for step in analysis.steps)

    def test_fig2_analysis_covers_every_node(self):
        plan = compile_query(fig2_graph(), fig2_query(), index="3hop")
        analysis = analyze_plan(plan)
        assert set(analysis.node_ids) == set(plan.query.nodes)
        assert any(step.kind == "filter" for step in analysis.steps)

    def test_baseline_routed_plan_is_rejected(self):
        graph = chain_graph()
        plan = compile_query(graph, simple_query(), index="3hop")
        routed = dataclasses.replace(
            plan, physical=dataclasses.replace(plan.physical, executor="twigstackd")
        )
        with pytest.raises(CodegenError, match="executor 'twigstackd'"):
            analyze_plan(routed)
        assert not supports_plan(routed)

    def test_constant_empty_plan_is_rejected(self):
        graph = chain_graph()
        plan = compile_query(graph, unsatisfiable_query(), index="3hop")
        assert plan.physical.executor == "constant-empty"
        with pytest.raises(CodegenError, match="not specializable"):
            analyze_plan(plan)

    def test_partial_downward_order_is_rejected(self):
        graph = chain_graph()
        plan = compile_query(graph, simple_query(), index="3hop")
        truncated = dataclasses.replace(
            plan,
            physical=dataclasses.replace(
                plan.physical, downward_order=plan.physical.downward_order[:-1]
            ),
        )
        with pytest.raises(CodegenError, match="does not cover"):
            analyze_plan(truncated)
        assert not supports_plan(truncated)

    def test_supports_plan_accepts_gtea_plans(self):
        graph = chain_graph()
        assert supports_plan(compile_query(graph, simple_query(), index="3hop"))


class TestCompilePlan:
    def test_unknown_mode_rejected(self):
        graph = chain_graph()
        plan = compile_query(graph, simple_query(), index="3hop")
        with pytest.raises(ValueError, match="unknown codegen mode"):
            compile_plan(plan, mode="jit")

    def test_source_mode_artifact(self):
        graph = chain_graph()
        plan = compile_query(graph, simple_query(), index="3hop")
        compiled = compile_plan(plan)
        assert compiled.mode == "source"
        assert compiled.index_name == "3hop"
        assert "def _specialized(state):" in compiled.source
        assert "codegen[source]" in compiled.describe()
        assert "3hop index" in compiled.describe()
        assert "CompiledPlanFunction" in repr(compiled)

    def test_closure_mode_has_no_source(self):
        graph = chain_graph()
        plan = compile_query(graph, simple_query(), index="3hop")
        compiled = compile_plan(plan, mode="closure")
        assert compiled.mode == "closure"
        assert compiled.source is None
        assert "codegen[closure]" in compiled.describe()

    def test_emitted_source_reflects_the_analysis(self):
        graph = chain_graph()
        plan = compile_query(graph, simple_query(), index="3hop")
        source = emit_plan_source(analyze_plan(plan))
        # Label-pinned candidate scans go through the label posting.
        assert "_lbl('a')" in source
        # The const-folded leaf is a straight copy, not a filter loop.
        assert "(copy)" in source
        # The emitted prose names the index decided at compile time.
        assert "3hop index" in source

    def test_both_modes_agree_with_the_engine(self):
        graph = fig2_graph()
        query = fig2_query()
        plan = compile_query(graph, query, index="3hop")
        engine = GTEA(graph)
        expected, _ = engine.execute(plan)
        for mode in ("source", "closure"):
            compiled = compile_plan(plan, mode=mode)
            answer, _ = engine.execute(plan, codegen=compiled)
            assert answer == expected == evaluate_naive(query, graph)


class TestSessionCodegen:
    def test_setting_validation(self):
        graph = chain_graph()
        with pytest.raises(ValueError, match="unknown codegen setting"):
            QuerySession(graph, codegen="yes")

    def test_default_is_off(self):
        graph = chain_graph()
        session = QuerySession(graph)
        _, stats = session.evaluate_with_stats(simple_query())
        assert stats.codegen_hits == stats.codegen_misses == 0
        assert stats.codegen_fallbacks == 0

    def test_cold_miss_then_warm_hit(self):
        graph = chain_graph()
        session = QuerySession(graph, result_cache_size=0, codegen="auto")
        query = simple_query()
        answer, cold = session.evaluate_with_stats(query)
        assert answer == evaluate_naive(query, graph)
        assert (cold.codegen_misses, cold.codegen_hits) == (1, 0)
        _, warm = session.evaluate_with_stats(query)
        assert (warm.codegen_misses, warm.codegen_hits) == (0, 1)
        assert session.cache_info()["codegen"]["size"] == 1

    def test_unsatisfiable_plan_never_reaches_codegen(self):
        # Constant-empty plans answer from the session's short-circuit
        # without executing anything, so no codegen counter moves (the
        # explain() note still reports the fallback reason).
        graph = chain_graph()
        session = QuerySession(graph, result_cache_size=0, codegen="auto")
        query = unsatisfiable_query()
        answer, stats = session.evaluate_with_stats(query)
        assert answer == set()
        assert stats.codegen_fallbacks == 0
        assert stats.codegen_hits == stats.codegen_misses == 0

    def test_cached_fallback_reason_counts_as_fallback(self):
        # A negative codegen-cache entry (the fallback reason string)
        # routes the execution to the interpreted pipeline and counts it.
        graph = chain_graph()
        session = QuerySession(graph, result_cache_size=0, codegen="auto")
        query = simple_query()
        session.codegen_cache.put(session.plan(query).fingerprint, "forced fallback")
        answer, stats = session.evaluate_with_stats(query)
        assert answer == evaluate_naive(query, graph)
        assert stats.codegen_fallbacks == 1
        assert stats.codegen_hits == stats.codegen_misses == 0

    def test_adaptive_session_falls_back(self):
        graph = chain_graph()
        session = QuerySession(graph, result_cache_size=0, adaptive=True, codegen="auto")
        _, stats = session.evaluate_with_stats(simple_query())
        assert stats.codegen_fallbacks == 1

    def test_parallel_session_falls_back(self):
        graph = chain_graph()
        options = ParallelOptions(workers=2, backend="serial", shards=2, min_shard_size=1)
        session = QuerySession(graph, result_cache_size=0, parallel=options, codegen="auto")
        query = simple_query()
        answer, stats = session.evaluate_with_stats(query)
        assert answer == evaluate_naive(query, graph)
        assert stats.codegen_fallbacks == 1

    def test_closure_mode_runs(self):
        graph = chain_graph()
        session = QuerySession(graph, result_cache_size=0, codegen="closure")
        query = simple_query()
        answer, stats = session.evaluate_with_stats(query)
        assert answer == evaluate_naive(query, graph)
        assert stats.codegen_misses == 1
        entry = session.codegen_cache.get(session.plan(query).fingerprint)
        assert entry.mode == "closure"

    def test_graph_mutation_invalidates_the_codegen_cache(self):
        graph = chain_graph()
        session = QuerySession(graph, result_cache_size=0, codegen="auto")
        query = simple_query()
        first, cold = session.evaluate_with_stats(query)
        assert cold.codegen_misses == 1
        graph.add_node(label="zzz")
        again, stats = session.evaluate_with_stats(query)
        assert again == first
        assert (stats.codegen_misses, stats.codegen_hits) == (1, 0)

    def test_explain_notes(self):
        graph = chain_graph()
        session = QuerySession(graph, result_cache_size=0, codegen="auto")
        rendered = session.explain(simple_query())
        assert "[codegen] codegen[source]" in rendered
        assert session.explain(unsatisfiable_query()).endswith(
            "[codegen] interpreted fallback (executor 'constant-empty' is not specializable)"
        )
        adaptive = QuerySession(graph, adaptive=True, codegen="auto")
        assert "[codegen] interpreted fallback (adaptive" in adaptive.explain(simple_query())
        options = ParallelOptions(workers=2, backend="serial", shards=2, min_shard_size=1)
        sharded = QuerySession(graph, parallel=options, codegen="auto")
        assert "[codegen] interpreted fallback (parallel-sharded execution)" in sharded.explain(
            simple_query()
        )

    def test_explain_without_codegen_has_no_note(self):
        graph = chain_graph()
        session = QuerySession(graph)
        assert "[codegen]" not in session.explain(simple_query())

    def test_stats_row_exposes_codegen_counters(self):
        graph = chain_graph()
        session = QuerySession(graph, result_cache_size=0, codegen="auto")
        _, stats = session.evaluate_with_stats(simple_query())
        row = stats.row()
        assert row["codegen_misses"] == 1
        assert row["codegen_hits"] == 0
