"""End-to-end tests of the compile → execute pipeline.

Satellite + acceptance coverage: unsatisfiable queries short-circuit to
O(1) with zero index I/O, minimized queries answer exactly like the
unoptimized path (paper fixtures and generated workloads, cross-checked
against the naive oracle), the cost model's baseline routing stays
correct, and ``explain()`` is surfaced through the session and CLI.
"""

import random

from repro.bench.cli import main as bench_main
from repro.datasets import random_embedded_query
from repro.engine import GTEA, QuerySession
from repro.graph import DataGraph
from repro.query import QueryBuilder, evaluate_naive
from tests.paper_fixtures import FIG2_ANSWER, fig2_graph, fig2_query, fig4_query


def unsatisfiable_query():
    return (
        QueryBuilder()
        .backbone("r", label="a1")
        .predicate("p", parent="r", label="b1")
        .structural("r", "p & !p")
        .outputs("r")
        .build()
    )


def layered_graph(rng, nodes=40, labels="abcx"):
    """A small layered DAG with repeated labels (oracle-friendly)."""
    graph = DataGraph()
    for _ in range(nodes):
        graph.add_node(label=rng.choice(labels))
    for i in range(nodes):
        for j in range(i + 1, min(i + 6, nodes)):
            if rng.random() < 0.25:
                graph.add_edge(i, j)
    return graph


class TestUnsatisfiableShortCircuit:
    def test_session_returns_empty_with_zero_index_io(self):
        session = QuerySession(fig2_graph())
        results, stats = session.evaluate_with_stats(unsatisfiable_query())
        assert results == set()
        assert stats.index_lookups == 0
        assert stats.index_entries == 0
        # No candidate set was built: no fetches, no cache traffic.
        assert stats.input_nodes == 0
        assert stats.candidate_cache_hits == 0
        assert stats.candidate_cache_misses == 0

    def test_bare_engine_matches_oracle_on_unsat(self):
        graph = fig2_graph()
        query = unsatisfiable_query()
        engine = GTEA(graph)
        results, stats = engine.evaluate_with_stats(query)
        assert results == evaluate_naive(query, graph) == set()
        assert stats.index_lookups == 0
        assert stats.candidates_initial == {}

    def test_unsat_with_output_structures_returns_empty_dict(self):
        engine = GTEA(fig2_graph())
        answers, stats = engine.evaluate_with_stats(
            unsatisfiable_query(), output_structures=[["r"], ["r"]]
        )
        assert answers == {0: set(), 1: set()}
        assert stats.index_lookups == 0

    def test_warm_unsat_is_a_result_cache_hit(self):
        session = QuerySession(fig2_graph())
        query = unsatisfiable_query()
        session.evaluate(query)
        _, warm = session.evaluate_with_stats(query)
        assert warm.result_cache_hits == 1

    def test_unsat_query_builds_no_index(self):
        session = QuerySession(fig2_graph())
        assert session.evaluate(unsatisfiable_query()) == set()
        assert session.cache_info()["indexes"]["pooled"] == 0

    def test_bare_engine_unsat_builds_no_index(self):
        engine = GTEA(fig2_graph())
        assert engine.evaluate(unsatisfiable_query()) == set()
        assert engine._reachability is None  # still lazy


class TestMinimizedEquivalence:
    def test_fig2_minimized_pipeline_matches_paper_answer(self):
        graph, query = fig2_graph(), fig2_query()
        session = QuerySession(graph)
        plan = session.plan(query)
        assert plan.compiled.normalized.removed_nodes == ("u8",)
        assert session.evaluate(query) == FIG2_ANSWER

    def test_optimized_equals_unoptimized_on_paper_fixtures(self):
        graph = fig2_graph()
        optimized = GTEA(graph, optimize=True)
        raw = GTEA(graph, optimize=False)
        for query in (
            fig2_query(),
            fig4_query("q1"),
            fig4_query("q2"),
            fig4_query("q1", fs_u1="u2"),
        ):
            expected = evaluate_naive(query, graph)
            assert optimized.evaluate(query) == expected
            assert raw.evaluate(query) == expected

    def test_generated_workload_oracle_cross_check(self):
        """datasets.random_queries patterns through the full pipeline."""
        rng = random.Random(23)
        graph = layered_graph(rng)
        session = QuerySession(graph)
        checked = 0
        for size in (3, 4, 5):
            for _ in range(4):
                query = random_embedded_query(graph, size, rng)
                if query is None:
                    continue
                expected = evaluate_naive(query, graph)
                assert session.evaluate(query) == expected
                assert expected  # embedded queries have nonempty answers
                checked += 1
        assert checked >= 6

    def test_redundant_sibling_is_removed_and_answers_agree(self):
        """A predicate duplicating an existing backbone child is dropped."""
        rng = random.Random(5)
        graph = layered_graph(rng)
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .backbone("b1", parent="r", label="b")
            .predicate("p1", parent="r", label="b")
            .outputs("r", "b1")
            .build()
        )
        session = QuerySession(graph)
        plan = session.plan(query)
        assert plan.compiled.normalized.removed_nodes == ("p1",)
        assert session.evaluate(query) == evaluate_naive(query, graph)


class TestBaselineRouting:
    def routed_case(self):
        rng = random.Random(11)
        graph = layered_graph(rng, nodes=30)
        query = (
            QueryBuilder()
            .backbone("r")
            .backbone("x", parent="r")
            .backbone("y", parent="x")
            .outputs("r", "x", "y")
            .build()
        )
        return graph, query

    def test_routed_query_matches_oracle(self):
        graph, query = self.routed_case()
        engine = GTEA(graph)
        plan = engine.compile(query)
        assert plan.physical.executor == "twigstackd"
        results, stats = engine.evaluate_with_stats(query)
        assert results == evaluate_naive(query, graph)
        assert "baseline" in stats.phase_seconds

    def test_routed_query_through_session_uses_candidate_cache(self):
        graph, query = self.routed_case()
        session = QuerySession(graph, result_cache_size=0)
        _, cold = session.evaluate_with_stats(query)
        assert cold.candidate_cache_misses == 1  # one wildcard predicate key
        assert cold.candidate_cache_hits == 2   # shared by the other nodes
        _, warm = session.evaluate_with_stats(query)
        assert warm.candidate_cache_hits == 3
        assert session.evaluate(query) == evaluate_naive(query, graph)

    def test_group_nodes_fall_back_to_gtea(self):
        graph, query = self.routed_case()
        engine = GTEA(graph)
        grouped, stats = engine.evaluate_with_stats(query, group_nodes=("y",))
        assert "baseline" not in stats.phase_seconds
        raw = GTEA(graph, optimize=False)
        expected, _ = raw.evaluate_with_stats(query, group_nodes=("y",))
        assert grouped == expected


class TestExplainSurface:
    def test_session_explain_shows_all_stages(self):
        session = QuerySession(fig2_graph())
        text = session.explain(fig2_query())
        assert "== normalize ==" in text
        assert "== logical plan ==" in text
        assert "== physical plan ==" in text
        assert "minimized" in text

    def test_explain_reuses_the_plan_cache(self):
        session = QuerySession(fig2_graph())
        query = fig2_query()
        session.explain(query)
        hits = session.plan_cache.counters.hits
        session.explain(query)
        assert session.plan_cache.counters.hits == hits + 1

    def test_cli_explain_subcommand(self, capsys):
        code = bench_main(["--scale", "0.02", "explain", "--variant", "q1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "== physical plan ==" in out
        assert "downward prune order" in out

    def test_cli_explain_rejects_unknown_index(self, capsys):
        code = bench_main(
            ["--scale", "0.02", "explain", "--index", "nosuchindex"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown index" in err

    def test_cli_shared_subcommand(self, capsys):
        code = bench_main([
            "--seed", "23", "shared",
            "--batch", "8", "--nodes", "120", "--explain",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "shared-dag" in out
        assert "prune work saved" in out
        assert "== shared plan DAG ==" in out

    def test_cli_shared_rejects_bad_overlap(self, capsys):
        code = bench_main(["shared", "--overlap", "1.5"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--overlap" in err

    def test_cli_shared_rejects_bad_nodes(self, capsys):
        code = bench_main(["shared", "--nodes", "0"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--nodes" in err
