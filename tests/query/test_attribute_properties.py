"""Property-based tests pinning attribute-predicate semantics.

Two soundness obligations used throughout Section 3:

* ``is_satisfiable`` — if any concrete tuple matches, the predicate must
  be declared satisfiable (no false negatives);
* ``subsumes`` (the paper's ``⊢``) — if ``p.subsumes(q)`` then every
  tuple matching ``p`` matches ``q``.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.query import AttributePredicate

_ATTRS = ["a", "b"]
_OPS = ["<", "<=", "=", "!=", ">", ">="]


def atoms(max_size=4):
    return st.lists(
        st.tuples(
            st.sampled_from(_ATTRS),
            st.sampled_from(_OPS),
            st.integers(min_value=-5, max_value=5),
        ),
        max_size=max_size,
    )


def tuples_strategy():
    return st.dictionaries(
        st.sampled_from(_ATTRS),
        st.one_of(
            st.integers(min_value=-6, max_value=6),
            st.floats(min_value=-6, max_value=6, allow_nan=False),
        ),
        min_size=len(_ATTRS),
        max_size=len(_ATTRS),
    )


@settings(max_examples=300, deadline=None)
@given(atoms(), tuples_strategy())
def test_matching_tuple_implies_satisfiable(atom_list, candidate):
    predicate = AttributePredicate(atom_list)
    if predicate.matches(candidate):
        assert predicate.is_satisfiable(), (
            f"{predicate!r} matched {candidate} but was declared unsat"
        )


@settings(max_examples=200, deadline=None)
@given(atoms())
def test_unsatisfiable_predicates_match_nothing(atom_list):
    predicate = AttributePredicate(atom_list)
    if not predicate.is_satisfiable():
        # Exhaustive-ish probe over a grid of integer tuples.
        for a in range(-6, 7):
            for b in range(-6, 7):
                assert not predicate.matches({"a": a, "b": b})


@settings(max_examples=300, deadline=None)
@given(atoms(), atoms(), tuples_strategy())
def test_subsumption_is_semantic_implication(left_atoms, right_atoms, candidate):
    left = AttributePredicate(left_atoms)
    right = AttributePredicate(right_atoms)
    if left.subsumes(right) and left.matches(candidate):
        assert right.matches(candidate), (
            f"{left!r} ⊢ {right!r} but {candidate} separates them"
        )


@settings(max_examples=150, deadline=None)
@given(atoms())
def test_subsumption_reflexive(atom_list):
    predicate = AttributePredicate(atom_list)
    assert predicate.subsumes(predicate)


@settings(max_examples=150, deadline=None)
@given(atoms(), atoms())
def test_conjoin_strengthens(left_atoms, right_atoms):
    left = AttributePredicate(left_atoms)
    right = AttributePredicate(right_atoms)
    joined = left.conjoin(right)
    assert joined.subsumes(left)
    assert joined.subsumes(right)
