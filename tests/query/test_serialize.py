"""Serialization round trips and canonical fingerprints."""

from repro.query import (
    AttributePredicate,
    QueryBuilder,
    predicate_key,
    query_fingerprint,
    query_from_dict,
    query_from_json,
    query_to_dict,
    query_to_json,
)


def build_query(sibling_order=("p", "q")):
    builder = (
        QueryBuilder()
        .backbone("r", predicate=AttributePredicate.label("a"))
        .backbone("x", parent="r", predicate=AttributePredicate.label("b"))
    )
    for node_id in sibling_order:
        label = {"p": "c", "q": "d"}[node_id]
        builder.predicate(
            node_id, parent="x", predicate=AttributePredicate.label(label)
        )
    return builder.structural("x", "p & !q").outputs("r", "x").build()


class TestFingerprintStability:
    def test_round_trip_preserves_fingerprint(self):
        query = build_query()
        fingerprint = query_fingerprint(query)
        assert query_fingerprint(query_from_dict(query_to_dict(query))) == fingerprint
        assert query_fingerprint(query_from_json(query_to_json(query))) == fingerprint

    def test_sibling_insertion_order_is_canonicalized(self):
        assert query_fingerprint(build_query(("p", "q"))) == query_fingerprint(
            build_query(("q", "p"))
        )

    def test_default_fs_operand_order_is_canonicalized(self):
        # Without an explicit structural formula the builder derives
        # fs = conjunction of predicate children in insertion order; the
        # fingerprint must not depend on that order.
        def build(order):
            builder = QueryBuilder().backbone(
                "r", predicate=AttributePredicate.label("a")
            )
            for node_id in order:
                label = {"p": "c", "q": "d"}[node_id]
                builder.predicate(
                    node_id, parent="r", predicate=AttributePredicate.label(label)
                )
            return builder.outputs("r").build()

        assert query_fingerprint(build(("p", "q"))) == query_fingerprint(
            build(("q", "p"))
        )

    def test_atom_order_is_canonicalized(self):
        atoms_ab = AttributePredicate([("tag", "=", "a"), ("rank", "<", 3)])
        atoms_ba = AttributePredicate([("rank", "<", 3), ("tag", "=", "a")])
        q1 = QueryBuilder().backbone("r", predicate=atoms_ab).outputs("r").build()
        q2 = QueryBuilder().backbone("r", predicate=atoms_ba).outputs("r").build()
        assert query_fingerprint(q1) == query_fingerprint(q2)
        assert predicate_key(atoms_ab) == predicate_key(atoms_ba)

    def test_output_order_is_significant(self):
        base = build_query()
        swapped = (
            QueryBuilder()
            .backbone("r", predicate=AttributePredicate.label("a"))
            .backbone("x", parent="r", predicate=AttributePredicate.label("b"))
            .predicate("p", parent="x", predicate=AttributePredicate.label("c"))
            .predicate("q", parent="x", predicate=AttributePredicate.label("d"))
            .structural("x", "p & !q")
            .outputs("x", "r")
            .build()
        )
        assert query_fingerprint(base) != query_fingerprint(swapped)

    def test_predicate_content_is_significant(self):
        assert query_fingerprint(build_query()) != query_fingerprint(
            (
                QueryBuilder()
                .backbone("r", predicate=AttributePredicate.label("a"))
                .backbone("x", parent="r", predicate=AttributePredicate.label("e"))
                .predicate("p", parent="x", predicate=AttributePredicate.label("c"))
                .predicate("q", parent="x", predicate=AttributePredicate.label("d"))
                .structural("x", "p & !q")
                .outputs("r", "x")
                .build()
            )
        )

    def test_value_types_are_distinguished(self):
        five_int = AttributePredicate([("rank", "=", 5)])
        five_str = AttributePredicate([("rank", "=", "5")])
        assert predicate_key(five_int) != predicate_key(five_str)


class TestSerializationRoundTrip:
    def test_dict_round_trip_preserves_structure(self):
        query = build_query()
        rebuilt = query_from_dict(query_to_dict(query))
        assert rebuilt.outputs == query.outputs
        assert set(rebuilt.nodes) == set(query.nodes)
        assert rebuilt.parent == query.parent
        assert str(rebuilt.fs("x")) == str(query.fs("x"))
