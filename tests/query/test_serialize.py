"""Serialization round trips and canonical fingerprints."""

from repro.query import (
    AttributePredicate,
    QueryBuilder,
    predicate_key,
    query_fingerprint,
    query_from_dict,
    query_from_json,
    query_to_dict,
    query_to_json,
    subtree_fingerprint,
    subtree_fingerprints,
)


def build_query(sibling_order=("p", "q")):
    builder = (
        QueryBuilder()
        .backbone("r", predicate=AttributePredicate.label("a"))
        .backbone("x", parent="r", predicate=AttributePredicate.label("b"))
    )
    for node_id in sibling_order:
        label = {"p": "c", "q": "d"}[node_id]
        builder.predicate(
            node_id, parent="x", predicate=AttributePredicate.label(label)
        )
    return builder.structural("x", "p & !q").outputs("r", "x").build()


class TestFingerprintStability:
    def test_round_trip_preserves_fingerprint(self):
        query = build_query()
        fingerprint = query_fingerprint(query)
        assert query_fingerprint(query_from_dict(query_to_dict(query))) == fingerprint
        assert query_fingerprint(query_from_json(query_to_json(query))) == fingerprint

    def test_sibling_insertion_order_is_canonicalized(self):
        assert query_fingerprint(build_query(("p", "q"))) == query_fingerprint(
            build_query(("q", "p"))
        )

    def test_default_fs_operand_order_is_canonicalized(self):
        # Without an explicit structural formula the builder derives
        # fs = conjunction of predicate children in insertion order; the
        # fingerprint must not depend on that order.
        def build(order):
            builder = QueryBuilder().backbone(
                "r", predicate=AttributePredicate.label("a")
            )
            for node_id in order:
                label = {"p": "c", "q": "d"}[node_id]
                builder.predicate(
                    node_id, parent="r", predicate=AttributePredicate.label(label)
                )
            return builder.outputs("r").build()

        assert query_fingerprint(build(("p", "q"))) == query_fingerprint(
            build(("q", "p"))
        )

    def test_atom_order_is_canonicalized(self):
        atoms_ab = AttributePredicate([("tag", "=", "a"), ("rank", "<", 3)])
        atoms_ba = AttributePredicate([("rank", "<", 3), ("tag", "=", "a")])
        q1 = QueryBuilder().backbone("r", predicate=atoms_ab).outputs("r").build()
        q2 = QueryBuilder().backbone("r", predicate=atoms_ba).outputs("r").build()
        assert query_fingerprint(q1) == query_fingerprint(q2)
        assert predicate_key(atoms_ab) == predicate_key(atoms_ba)

    def test_output_order_is_significant(self):
        base = build_query()
        swapped = (
            QueryBuilder()
            .backbone("r", predicate=AttributePredicate.label("a"))
            .backbone("x", parent="r", predicate=AttributePredicate.label("b"))
            .predicate("p", parent="x", predicate=AttributePredicate.label("c"))
            .predicate("q", parent="x", predicate=AttributePredicate.label("d"))
            .structural("x", "p & !q")
            .outputs("x", "r")
            .build()
        )
        assert query_fingerprint(base) != query_fingerprint(swapped)

    def test_predicate_content_is_significant(self):
        assert query_fingerprint(build_query()) != query_fingerprint(
            (
                QueryBuilder()
                .backbone("r", predicate=AttributePredicate.label("a"))
                .backbone("x", parent="r", predicate=AttributePredicate.label("e"))
                .predicate("p", parent="x", predicate=AttributePredicate.label("c"))
                .predicate("q", parent="x", predicate=AttributePredicate.label("d"))
                .structural("x", "p & !q")
                .outputs("r", "x")
                .build()
            )
        )

    def test_value_types_are_distinguished(self):
        five_int = AttributePredicate([("rank", "=", 5)])
        five_str = AttributePredicate([("rank", "=", "5")])
        assert predicate_key(five_int) != predicate_key(five_str)


class TestSerializationRoundTrip:
    def test_dict_round_trip_preserves_structure(self):
        query = build_query()
        rebuilt = query_from_dict(query_to_dict(query))
        assert rebuilt.outputs == query.outputs
        assert set(rebuilt.nodes) == set(query.nodes)
        assert rebuilt.parent == query.parent
        assert str(rebuilt.fs("x")) == str(query.fs("x"))


class TestSubtreeFingerprints:
    def test_node_ids_do_not_participate(self):
        renamed = (
            QueryBuilder()
            .backbone("root", predicate=AttributePredicate.label("a"))
            .backbone("body", parent="root", predicate=AttributePredicate.label("b"))
            .predicate("c1", parent="body", predicate=AttributePredicate.label("c"))
            .predicate("c2", parent="body", predicate=AttributePredicate.label("d"))
            .structural("body", "c1 & !c2")
            .outputs("root", "body")
            .build()
        )
        base_fps = subtree_fingerprints(build_query())
        renamed_fps = subtree_fingerprints(renamed)
        assert base_fps["r"] == renamed_fps["root"]
        assert base_fps["x"] == renamed_fps["body"]
        assert base_fps["p"] == renamed_fps["c1"]
        assert base_fps["q"] == renamed_fps["c2"]

    def test_sibling_order_does_not_participate(self):
        first = subtree_fingerprints(build_query(("p", "q")))
        second = subtree_fingerprints(build_query(("q", "p")))
        assert first == second

    def test_edge_type_into_a_child_participates(self):
        def variant(edge):
            return (
                QueryBuilder()
                .backbone("r", predicate=AttributePredicate.label("a"))
                .predicate(
                    "p", parent="r", edge=edge, predicate=AttributePredicate.label("c")
                )
                .outputs("r")
                .build()
            )

        ad = subtree_fingerprints(variant("ad"))
        pc = subtree_fingerprints(variant("pc"))
        assert ad["p"] == pc["p"]  # the leaf itself is identical
        assert ad["r"] != pc["r"]  # but the parent constraint differs

    def test_structural_formula_participates(self):
        conjunctive = build_query()  # fs(x) = p & !q
        disjunctive = (
            QueryBuilder()
            .backbone("r", predicate=AttributePredicate.label("a"))
            .backbone("x", parent="r", predicate=AttributePredicate.label("b"))
            .predicate("p", parent="x", predicate=AttributePredicate.label("c"))
            .predicate("q", parent="x", predicate=AttributePredicate.label("d"))
            .structural("x", "p | !q")
            .outputs("r", "x")
            .build()
        )
        assert (
            subtree_fingerprints(conjunctive)["x"]
            != subtree_fingerprints(disjunctive)["x"]
        )

    def test_cross_query_sharing_of_identical_subtrees(self):
        """The same b[c]-pattern under different roots shares a fingerprint."""
        other = (
            QueryBuilder()
            .backbone("t", predicate=AttributePredicate.label("e"))
            .backbone("u", parent="t", predicate=AttributePredicate.label("b"))
            .predicate("v", parent="u", predicate=AttributePredicate.label("c"))
            .predicate("w", parent="u", predicate=AttributePredicate.label("d"))
            .structural("u", "v & !w")
            .outputs("t")
            .build()
        )
        assert subtree_fingerprint(build_query(), "x") == subtree_fingerprint(
            other, "u"
        )

    def test_convenience_accessor_matches_bulk_map(self):
        query = build_query()
        fps = subtree_fingerprints(query)
        for node_id in query.nodes:
            assert subtree_fingerprint(query, node_id) == fps[node_id]
