"""Tests for the naive reference evaluator against the paper's examples."""

from repro.query import (
    QueryBuilder,
    candidate_nodes,
    downward_match_sets,
    evaluate_naive,
)
from tests.paper_fixtures import FIG2_ANSWER, fig2_graph, fig2_query, v


class TestCandidates:
    def test_example3_mat_sets(self):
        graph, query = fig2_graph(), fig2_query()
        assert set(candidate_nodes(graph, query, "u5")) == {v(13)}
        assert set(candidate_nodes(graph, query, "u10")) == {
            v(9), v(10), v(13), v(15)
        }
        assert set(candidate_nodes(graph, query, "u1")) == {v(1), v(2), v(4)}
        assert set(candidate_nodes(graph, query, "u2")) == {v(3), v(5), v(8)}


class TestDownwardMatching:
    def test_example9_downward_sets(self):
        graph, query = fig2_graph(), fig2_query()
        down = downward_match_sets(graph, query)
        assert down["u2"] == {v(3), v(8)}
        assert down["u3"] == {v(3), v(5)}
        assert down["u7"] == {v(6), v(7)}
        assert down["u1"] == {v(1), v(2), v(4)}

    def test_example3_v3_matches_u3(self):
        graph, query = fig2_graph(), fig2_query()
        down = downward_match_sets(graph, query)
        assert v(3) in down["u3"]
        assert v(5) in down["u3"]   # cannot reach u6's match -> !u6 true
        assert v(8) not in down["u3"]  # reaches no D1 node


class TestPaperAnswer:
    def test_example3_answer_set(self):
        """The headline fixture check: Q(G) from the paper, exactly."""
        graph, query = fig2_graph(), fig2_query()
        assert evaluate_naive(query, graph) == FIG2_ANSWER


class TestSmallQueries:
    def test_single_node_query(self):
        graph = fig2_graph()
        query = QueryBuilder().backbone("a", paper_label="G1").build()
        assert evaluate_naive(query, graph) == {(v(16),)}

    def test_empty_answer(self):
        graph = fig2_graph()
        query = (
            QueryBuilder()
            .backbone("a", paper_label="G1")
            .backbone("b", parent="a", paper_label="A1")
            .build()
        )
        # g1 is a leaf: nothing below it.
        assert evaluate_naive(query, graph) == set()

    def test_pc_edge_semantics(self):
        graph = fig2_graph()
        ad_query = (
            QueryBuilder()
            .backbone("a", paper_label="A1")
            .backbone("b", parent="a", edge="ad", paper_label="E2")
            .outputs("a", "b")
            .build()
        )
        pc_query = (
            QueryBuilder()
            .backbone("a", paper_label="A1")
            .backbone("b", parent="a", edge="pc", paper_label="E2")
            .outputs("a", "b")
            .build()
        )
        # v1 reaches v13 (via v3->v11), but no a-node is v13's parent.
        assert (v(1), v(13)) in evaluate_naive(ad_query, graph)
        assert evaluate_naive(pc_query, graph) == set()

    def test_negation_filters(self):
        graph = fig2_graph()
        query = (
            QueryBuilder()
            .backbone("c", paper_label="C1")
            .predicate("e", parent="c", paper_label="E2")
            .structural("c", "!e")
            .outputs("c")
            .build()
        )
        # C-nodes NOT reaching an e2 node: v5 only (v3, v8 reach v13).
        assert evaluate_naive(query, graph) == {(v(5),)}

    def test_disjunction(self):
        graph = fig2_graph()
        query = (
            QueryBuilder()
            .backbone("c", paper_label="C1")
            .predicate("g", parent="c", paper_label="G1")
            .predicate("e", parent="c", paper_label="E2")
            .structural("c", "g | e")
            .outputs("c")
            .build()
        )
        # v3 reaches both, v8 reaches v13 (e2), v5 reaches neither.
        assert evaluate_naive(query, graph) == {(v(3),), (v(8),)}

    def test_output_projection_dedups(self):
        graph = fig2_graph()
        query = (
            QueryBuilder()
            .backbone("a", paper_label="A1")
            .backbone("d", parent="a", paper_label="D1")
            .outputs("d")
            .build()
        )
        results = evaluate_naive(query, graph)
        # v12 and v14 are each reachable from multiple A-nodes but appear once.
        assert results == {(v(11),), (v(12),), (v(14),)}

    def test_wildcard_node(self):
        graph = fig2_graph()
        query = (
            QueryBuilder()
            .backbone("g", paper_label="G1")
            .build()
        )
        assert evaluate_naive(query, graph) == {(v(16),)}
