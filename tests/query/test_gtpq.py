"""Tests for the GTPQ model, builder and serialization."""

import pytest

from repro.logic import TRUE, Var, land
from repro.query import (
    AttributePredicate,
    EdgeType,
    QueryBuilder,
    QueryValidationError,
    query_from_dict,
    query_from_json,
    query_to_dict,
    query_to_json,
)
from tests.paper_fixtures import fig2_query


class TestBuilder:
    def test_fig2_query_builds(self):
        query = fig2_query()
        assert query.root == "u1"
        assert query.size == 10
        assert sorted(query.backbone_nodes()) == ["u1", "u2", "u3", "u4"]
        assert sorted(query.predicate_nodes()) == [
            "u10", "u5", "u6", "u7", "u8", "u9",
        ]
        assert query.outputs == ["u2", "u4"]

    def test_default_edge_is_ad(self):
        query = fig2_query()
        assert query.edge_type("u2") is EdgeType.DESCENDANT

    def test_pc_edge_parsing(self):
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .backbone("b", parent="a", edge="/", label="y")
            .build()
        )
        assert query.edge_type("b") is EdgeType.CHILD

    def test_fext_conjoins_backbone_children(self):
        query = fig2_query()
        # fext(u1) = u2 & u3 (both backbone, fs(u1) = 1).
        assert query.fext("u1") == land(Var("u2"), Var("u3"))
        # fext(u3) = u4 & (!u6 | (u7 & u8)).
        fext_u3 = query.fext("u3")
        assert fext_u3.variables() == {"u4", "u6", "u7", "u8"}

    def test_default_structural_conjunction(self):
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
            .predicate("q", parent="a", label="z")
            .build()
        )
        assert query.fs("a") == land(Var("p"), Var("q"))

    def test_default_outputs_are_all_backbone(self):
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .backbone("b", parent="a", label="y")
            .predicate("p", parent="b", label="z")
            .build()
        )
        assert set(query.outputs) == {"a", "b"}

    def test_leaf_fs_is_true(self):
        assert fig2_query().fs("u4") is TRUE


class TestValidation:
    def test_duplicate_id_rejected(self):
        builder = QueryBuilder().backbone("a", label="x")
        with pytest.raises(QueryValidationError, match="duplicate"):
            builder.backbone("a", label="y")

    def test_predicate_root_rejected(self):
        with pytest.raises(QueryValidationError):
            QueryBuilder().predicate("p", parent=None, label="x")

    def test_unknown_parent_rejected(self):
        with pytest.raises(QueryValidationError, match="not yet added"):
            QueryBuilder().backbone("a", label="x").backbone(
                "b", parent="zzz", label="y"
            )

    def test_two_roots_rejected(self):
        builder = QueryBuilder().backbone("a", label="x")
        with pytest.raises(QueryValidationError, match="second root"):
            builder.backbone("b", label="y")

    def test_backbone_under_predicate_rejected(self):
        builder = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
        )
        builder.backbone("b", parent="p", label="z")
        with pytest.raises(QueryValidationError, match="predicate parent"):
            builder.build()

    def test_predicate_output_rejected(self):
        builder = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
            .outputs("p")
        )
        with pytest.raises(QueryValidationError, match="backbone"):
            builder.build()

    def test_fs_over_backbone_child_rejected(self):
        builder = (
            QueryBuilder()
            .backbone("a", label="x")
            .backbone("b", parent="a", label="y")
            .structural("a", "b")
        )
        with pytest.raises(QueryValidationError, match="non-predicate-children"):
            builder.build()

    def test_fs_over_unrelated_node_rejected(self):
        builder = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
            .structural("a", "zzz")
        )
        with pytest.raises(QueryValidationError):
            builder.build()

    def test_structural_on_unknown_node_rejected(self):
        builder = QueryBuilder().backbone("a", label="x")
        with pytest.raises(QueryValidationError, match="unknown node"):
            builder.structural("nope", "a")


class TestClassification:
    def test_fig2_is_not_conjunctive(self):
        query = fig2_query()
        assert not query.is_conjunctive()
        assert not query.is_union_conjunctive()  # has negation

    def test_conjunctive_query(self):
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
            .predicate("q", parent="a", label="z")
            .build()
        )
        assert query.is_conjunctive()
        assert query.is_union_conjunctive()

    def test_union_conjunctive_query(self):
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
            .predicate("q", parent="a", label="z")
            .structural("a", "p | q")
            .build()
        )
        assert not query.is_conjunctive()
        assert query.is_union_conjunctive()

    def test_has_pc_edges(self):
        assert not fig2_query().has_pc_edges()


class TestTraversal:
    def test_depth_first_preorder(self):
        query = fig2_query()
        order = list(query.depth_first())
        assert order[0] == "u1"
        assert order.index("u3") < order.index("u6")
        assert set(order) == set(query.nodes)

    def test_bottom_up_children_first(self):
        query = fig2_query()
        order = query.bottom_up()
        position = {node_id: i for i, node_id in enumerate(order)}
        for node_id, parent_id in query.parent.items():
            assert position[node_id] < position[parent_id]

    def test_ancestors(self):
        query = fig2_query()
        assert query.ancestors("u9") == ["u7", "u3", "u1"]
        assert query.ancestors("u1") == []

    def test_subtree_nodes(self):
        query = fig2_query()
        assert set(query.subtree_nodes("u7")) == {"u7", "u9", "u10"}

    def test_copy_drop_subtree(self):
        query = fig2_query()
        from repro.logic import substitute

        smaller = query.copy(
            drop=["u7"],
            structural_override={
                "u3": substitute(query.fs("u3"), {"u7": False})
            },
        )
        assert "u7" not in smaller.nodes
        assert "u9" not in smaller.nodes
        assert smaller.size == 7
        # Original untouched.
        assert query.size == 10


class TestSerialization:
    def test_round_trip_dict(self):
        query = fig2_query()
        rebuilt = query_from_dict(query_to_dict(query))
        assert rebuilt.size == query.size
        assert rebuilt.outputs == query.outputs
        assert rebuilt.fs("u3") == query.fs("u3")
        assert rebuilt.edge_type("u4") == query.edge_type("u4")
        assert rebuilt.attribute("u5") == query.attribute("u5")

    def test_round_trip_json(self):
        query = fig2_query()
        rebuilt = query_from_json(query_to_json(query))
        assert rebuilt.size == query.size
        assert rebuilt.fs("u7") == query.fs("u7")

    def test_pc_edges_survive(self):
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .backbone("b", parent="a", edge="pc", label="y")
            .build()
        )
        rebuilt = query_from_dict(query_to_dict(query))
        assert rebuilt.edge_type("b") is EdgeType.CHILD

    def test_wildcard_predicate_survives(self):
        query = (
            QueryBuilder()
            .backbone("a", predicate=AttributePredicate.wildcard())
            .build()
        )
        rebuilt = query_from_dict(query_to_dict(query))
        assert rebuilt.attribute("a") == AttributePredicate.wildcard()
