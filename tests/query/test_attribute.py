"""Tests for attribute predicates."""

import pytest

from repro.query import AttributePredicate


class TestMatching:
    def test_empty_predicate_matches_everything(self):
        assert AttributePredicate.wildcard().matches({})
        assert AttributePredicate.wildcard().matches({"tag": "x"})

    def test_label_factory(self):
        predicate = AttributePredicate.label("person3")
        assert predicate.matches({"label": "person3"})
        assert not predicate.matches({"label": "person4"})
        assert not predicate.matches({})

    def test_tag_rank_factory_paper_convention(self):
        # Example 3: v13 (e2) matches u5 (E2); v15 (e1) does not.
        predicate = AttributePredicate.tag_rank("E2")
        assert predicate.matches({"tag": "e", "rank": 2})
        assert predicate.matches({"tag": "e", "rank": 3})
        assert not predicate.matches({"tag": "e", "rank": 1})
        assert not predicate.matches({"tag": "d", "rank": 2})

    def test_numeric_comparisons(self):
        # Q1 of Example 1: year in [2000, 2010].
        predicate = AttributePredicate([("year", ">=", 2000), ("year", "<=", 2010)])
        assert predicate.matches({"year": 2005})
        assert predicate.matches({"year": 2000})
        assert not predicate.matches({"year": 1999})
        assert not predicate.matches({"year": 2011})

    def test_not_equal(self):
        predicate = AttributePredicate([("tag", "!=", "item")])
        assert predicate.matches({"tag": "person"})
        assert not predicate.matches({"tag": "item"})

    def test_missing_attribute_fails(self):
        predicate = AttributePredicate([("year", ">", 2000)])
        assert not predicate.matches({"tag": "paper"})

    def test_incomparable_types_fail_quietly(self):
        predicate = AttributePredicate([("year", ">", 2000)])
        assert not predicate.matches({"year": "not-a-number"})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            AttributePredicate([("a", "~=", 1)])

    def test_double_equals_normalized(self):
        predicate = AttributePredicate([("a", "==", 1)])
        assert predicate.matches({"a": 1})


class TestSatisfiability:
    def test_empty_is_satisfiable(self):
        assert AttributePredicate.wildcard().is_satisfiable()

    def test_consistent_interval(self):
        assert AttributePredicate(
            [("year", ">=", 2000), ("year", "<=", 2010)]
        ).is_satisfiable()

    def test_empty_interval(self):
        assert not AttributePredicate(
            [("year", ">", 2010), ("year", "<", 2000)]
        ).is_satisfiable()

    def test_point_interval(self):
        assert AttributePredicate(
            [("year", ">=", 5), ("year", "<=", 5)]
        ).is_satisfiable()
        assert not AttributePredicate(
            [("year", ">", 5), ("year", "<=", 5)]
        ).is_satisfiable()

    def test_point_interval_excluded(self):
        assert not AttributePredicate(
            [("year", ">=", 5), ("year", "<=", 5), ("year", "!=", 5)]
        ).is_satisfiable()

    def test_conflicting_equalities(self):
        assert not AttributePredicate(
            [("tag", "=", "a"), ("tag", "=", "b")]
        ).is_satisfiable()

    def test_equality_vs_bounds(self):
        assert AttributePredicate(
            [("year", "=", 2005), ("year", ">=", 2000)]
        ).is_satisfiable()
        assert not AttributePredicate(
            [("year", "=", 1999), ("year", ">=", 2000)]
        ).is_satisfiable()

    def test_equality_vs_not_equal(self):
        assert not AttributePredicate(
            [("tag", "=", "a"), ("tag", "!=", "a")]
        ).is_satisfiable()

    def test_independent_attributes(self):
        assert AttributePredicate(
            [("a", "=", 1), ("b", "=", 2)]
        ).is_satisfiable()


class TestSubsumption:
    def test_paper_similarity_condition(self):
        # u2 ⊢ u1 cases from Section 3.1: <= with smaller constant subsumes.
        general = AttributePredicate([("year", "<=", 2010)])
        specific = AttributePredicate([("year", "<=", 2005)])
        assert specific.subsumes(general)
        assert not general.subsumes(specific)

    def test_ge_direction(self):
        general = AttributePredicate([("rank", ">=", 1)])
        specific = AttributePredicate([("rank", ">=", 2)])
        assert specific.subsumes(general)
        assert not general.subsumes(specific)

    def test_equality_requires_same_constant(self):
        a = AttributePredicate([("tag", "=", "x")])
        b = AttributePredicate([("tag", "=", "x")])
        c = AttributePredicate([("tag", "=", "y")])
        assert a.subsumes(b)
        assert not a.subsumes(c)

    def test_tag_rank_labels(self):
        # C2 is more specific than C1 (matches fewer nodes).
        c1 = AttributePredicate.tag_rank("C1")
        c2 = AttributePredicate.tag_rank("C2")
        assert c2.subsumes(c1)
        assert not c1.subsumes(c2)

    def test_anything_subsumes_wildcard(self):
        assert AttributePredicate.label("x").subsumes(AttributePredicate.wildcard())
        assert not AttributePredicate.wildcard().subsumes(AttributePredicate.label("x"))

    def test_conjoin(self):
        joined = AttributePredicate([("a", "=", 1)]).conjoin(
            AttributePredicate([("b", ">", 2)])
        )
        assert joined.matches({"a": 1, "b": 3})
        assert not joined.matches({"a": 1, "b": 2})

    def test_equality_and_hash(self):
        a = AttributePredicate([("a", "=", 1), ("b", ">", 2)])
        b = AttributePredicate([("b", ">", 2), ("a", "=", 1)])
        assert a == b
        assert hash(a) == hash(b)
