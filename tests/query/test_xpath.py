"""Tests for the XPath-like query frontend."""

import pytest

from repro.engine import GTEA
from repro.graph import DataGraph
from repro.logic import Var, land, lnot, lor
from repro.query import EdgeType, evaluate_naive
from repro.query.xpath import XPathSyntaxError, parse_xpath_query


def _graph():
    #  auction(0) -> bidder(1), seller(2), item(3)
    #  auction(4) -> bidder(5)
    #  item(3) -> mail(6)
    g = DataGraph()
    for label in ["auction", "bidder", "seller", "item", "auction", "bidder", "mail"]:
        g.add_node(label=label)
    for e in [(0, 1), (0, 2), (0, 3), (4, 5), (3, 6)]:
        g.add_edge(*e)
    return g


class TestParsing:
    def test_simple_descendant_path(self):
        query = parse_xpath_query("//auction//bidder")
        assert query.size == 2
        assert query.outputs == [f"bidder_1"]
        assert query.edge_type("bidder_1") is EdgeType.DESCENDANT

    def test_child_step(self):
        query = parse_xpath_query("//auction/bidder")
        assert query.edge_type("bidder_1") is EdgeType.CHILD

    def test_wildcard(self):
        query = parse_xpath_query("//*/bidder")
        root = query.root
        assert query.attribute(root).matches({"anything": 1})

    def test_structural_and(self):
        query = parse_xpath_query("//auction[bidder and seller]")
        root = query.root
        fs = query.fs(root)
        assert len(fs.variables()) == 2
        assert query.is_conjunctive()

    def test_structural_or_and_not(self):
        query = parse_xpath_query("//auction[bidder or not(seller)]")
        fs = query.fs(query.root)
        variables = sorted(fs.variables())
        assert fs == lor(Var(variables[0]), lnot(Var(variables[1])))

    def test_attribute_atoms(self):
        query = parse_xpath_query("//paper[@year >= 2000 and @year <= 2010]")
        predicate = query.attribute(query.root)
        assert predicate.matches({"label": "paper", "year": 2005})
        assert not predicate.matches({"label": "paper", "year": 1999})

    def test_string_values(self):
        query = parse_xpath_query("//author[@value = 'Alice']")
        assert query.attribute(query.root).matches(
            {"label": "author", "value": "Alice"}
        )

    def test_relative_path_with_dot_slash(self):
        query = parse_xpath_query("//person[.//education]")
        assert query.size == 2
        child = next(iter(query.fs(query.root).variables()))
        assert query.edge_type(child) is EdgeType.DESCENDANT

    def test_multi_step_relative_path(self):
        query = parse_xpath_query("//person[address/city]")
        assert query.size == 3
        # address is the predicate var; city hangs below it.
        address = next(iter(query.fs(query.root).variables()))
        assert query.children[address]

    def test_spine_outputs(self):
        query = parse_xpath_query("//a/b//c", outputs="spine")
        assert len(query.outputs) == 3

    def test_multiple_bracket_blocks_conjoin(self):
        query = parse_xpath_query("//a[b][c]")
        fs = query.fs(query.root)
        assert len(fs.variables()) == 2
        assert query.is_conjunctive()


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "", "auction", "//", "//a[", "//a]", "//a[not()]",
            "//a[@x 5]", "//a[and]", "//a[b or]", "//a[b[c]]",
        ],
    )
    def test_malformed(self, text):
        with pytest.raises((XPathSyntaxError, Exception)):
            parse_xpath_query(text)


class TestEvaluation:
    def test_and_query(self):
        graph = _graph()
        query = parse_xpath_query("//auction[bidder and seller]")
        assert GTEA(graph).evaluate(query) == {(0,)}

    def test_or_query(self):
        graph = _graph()
        query = parse_xpath_query("//auction[seller or bidder]")
        assert GTEA(graph).evaluate(query) == {(0,), (4,)}

    def test_not_query(self):
        graph = _graph()
        query = parse_xpath_query("//auction[bidder and not(seller)]")
        assert GTEA(graph).evaluate(query) == {(4,)}

    def test_nested_relative_path(self):
        graph = _graph()
        query = parse_xpath_query("//auction[item/mail]")
        assert GTEA(graph).evaluate(query) == {(0,)}

    def test_output_is_last_step(self):
        graph = _graph()
        query = parse_xpath_query("//auction[seller]/bidder")
        assert GTEA(graph).evaluate(query) == {(1,)}

    def test_agrees_with_naive(self):
        graph = _graph()
        for text in [
            "//auction[bidder or not(item/mail)]",
            "//auction[not(bidder) or (seller and item)]",
            "//auction/item",
        ]:
            query = parse_xpath_query(text)
            assert GTEA(graph).evaluate(query) == evaluate_naive(query, graph)
