"""Shared fixtures transcribing the paper's running examples.

Figure 2(a) reconstruction
--------------------------
The arXiv source of the paper renders Fig. 2(a) as scrambled text, so the
edge list below is *reconstructed* from the prose, chosen to satisfy every
machine-checkable statement in the paper:

* the node labels (``v1..v16`` with labels ``a1..g1``) — unambiguous;
* Example 3: ``mat(u5) = {v13}``, ``mat(u10) = {v9,v10,v13,v15}``,
  ``Q(G) = {(v3,v11),(v3,v12),(v3,v14),(v8,v12),(v8,v14)}``, the match
  ``(v1,v3,v3,v11)``, ``v3 |= u3`` via ``v6 |= u7`` and ``v11 |= u8``, and
  ``v5 |= u3`` because v5 cannot reach a node matching u6;
* Example 9: after PruneDownward ``mat(u2) = {v3,v8}``, ``mat(u3) = {v3,v5}``,
  ``mat(u7) = {v6,v7}`` unchanged, and the valuation of v2 is inherited from
  v4 along a shared chain (we place v2 above v4 via the edge ``v2 -> v4``);
* Example 10: ``mat(u1)`` reaches each of v3, v8, v5.

Known deviations (the prose itself is not fully self-consistent):

* Example 9 explains v8's removal from ``mat(u3)`` with the valuation
  ``pu8 = 1, pu6 = pu7 = 0`` — under the printed ``fs(u3) = !u6 | (u7 & u8)``
  that valuation makes the predicate *true* for every possible parentage of
  u4, so it cannot be the removal reason as printed.  In this reconstruction
  v8 is removed because it reaches no D1 node (``p_{u4} = 0`` in
  ``fext(u3)``), which yields exactly the printed post-pruning mats and the
  printed answer set.
* Figure 5's concrete chain decomposition is not reproduced: chains are
  produced by our path-cover algorithm and are correct but not identical.

Query of Fig. 2(b): u1(A1 root) -> backbone u2(C1), u3(C1);
u2 -> predicate u5(E2), fs(u2) = u5; u3 -> backbone u4(D1, output),
predicates u6(G1), u7(B1), u8(D1), fs(u3) = !u6 | (u7 & u8);
u7 -> predicates u9(E1), u10(E1), fs(u7) = u9 | u10.
Output nodes: u2 and u4 (the starred nodes).
"""

from __future__ import annotations

from repro.graph import DataGraph

#: label of each Fig. 2(a) node (paper ids v1..v16).
FIG2_LABELS: dict[int, str] = {
    1: "a1", 2: "a1", 3: "c1", 4: "a1", 5: "c2", 6: "b1", 7: "b1", 8: "c1",
    9: "e1", 10: "e1", 11: "d1", 12: "d1", 13: "e2", 14: "d1", 15: "e1",
    16: "g1",
}

#: reconstructed edges of Fig. 2(a) (paper ids).
FIG2_EDGES: list[tuple[int, int]] = [
    (1, 3), (1, 5),
    (2, 4),
    (4, 8), (4, 5),
    (7, 3), (7, 9),
    (3, 6), (3, 11),
    (6, 10), (10, 15),
    (11, 16), (11, 13),
    (5, 12), (5, 14),
    (8, 13),
]


def parse_paper_label(label: str) -> tuple[str, int]:
    """Split ``"a1"`` / ``"E2"`` into ``("a", 1)`` (tag lower-cased)."""
    head = label.rstrip("0123456789")
    rank = int(label[len(head):])
    return head.lower(), rank


def fig2_graph() -> DataGraph:
    """The Fig. 2(a) data graph with 0-based node ids ``v_i -> i - 1``.

    Each node carries ``label`` (e.g. ``"c2"``), ``tag`` (``"c"``) and
    ``rank`` (``2``), implementing the paper's convention that a data label
    ``x_i`` matches a query label ``Y_j`` iff ``x == y`` and ``i >= j``.
    """
    graph = DataGraph()
    for paper_id in range(1, 17):
        label = FIG2_LABELS[paper_id]
        tag, rank = parse_paper_label(label)
        graph.add_node({"label": label, "tag": tag, "rank": rank})
    for source, target in FIG2_EDGES:
        graph.add_edge(source - 1, target - 1)
    return graph


def v(paper_id: int) -> int:
    """Map a paper node id ``v_i`` to the 0-based graph id."""
    return paper_id - 1


#: Paper answer set of Example 3 as 0-based (u2-image, u4-image) pairs.
FIG2_ANSWER: set[tuple[int, int]] = {
    (v(3), v(11)), (v(3), v(12)), (v(3), v(14)),
    (v(8), v(12)), (v(8), v(14)),
}


def fig4_query(variant: str, fs_u1: str = "!u2"):
    """The Fig. 4 queries used by Examples 4–6 (Sections 3.1–3.3).

    Structure (label assignment reconstructed so the prose relations hold:
    ``u6 ⊢ u2``, ``u4 ⊴ u7``-compatible labels, ``u5``/``u8`` rendered
    non-independent by ``fs(u3) = (u5 & u6) | (!u5 & u6)``)::

        u1 (A1, root, output? -> u3 is the starred output)
        ├── u2 (predicate, B1)   [AD in Q1, PC in Q2]
        │     └── u4 (predicate, E1)
        └── u3 (backbone, C1, output)
              ├── u5 (predicate, C1)
              │     └── u8 (predicate, F1)
              └── u6 (predicate, B2)
                    └── u7 (predicate, E1)

    fs: u1 -> ``fs_u1`` (Example 4 uses ``!u2``, Example 5 uses ``u2``),
    u2 -> u4, u3 -> (u5 & u6) | (!u5 & u6), u5 -> u8, u6 -> u7.

    Args:
        variant: ``"q1"`` (u2 is an AD child) or ``"q2"`` (u2 is PC).
        fs_u1: structural predicate of the root.
    """
    from repro.query import QueryBuilder

    u2_edge = "ad" if variant == "q1" else "pc"
    return (
        QueryBuilder()
        .backbone("u1", paper_label="A1")
        .predicate("u2", parent="u1", edge=u2_edge, paper_label="B1")
        .backbone("u3", parent="u1", paper_label="C1")
        .predicate("u4", parent="u2", paper_label="E1")
        .predicate("u5", parent="u3", paper_label="C1")
        .predicate("u6", parent="u3", paper_label="B2")
        .predicate("u7", parent="u6", paper_label="E1")
        .predicate("u8", parent="u5", paper_label="F1")
        .structural("u1", fs_u1)
        .structural("u2", "u4")
        .structural("u3", "(u5 & u6) | (!u5 & u6)")
        .structural("u5", "u8")
        .structural("u6", "u7")
        .outputs("u3")
        .build()
    )


def fig4_q3():
    """Q3 of Fig. 4(c): the minimum equivalent of Q1 with ``fs(u1)=u2``.

    Node ids keep their Q1 names so tests can compare shapes directly:
    u1(A1) -> u3(C1, output) -> u6(B2) -> u7(E1).
    """
    from repro.query import QueryBuilder

    return (
        QueryBuilder()
        .backbone("u1", paper_label="A1")
        .backbone("u3", parent="u1", paper_label="C1")
        .predicate("u6", parent="u3", paper_label="B2")
        .predicate("u7", parent="u6", paper_label="E1")
        .structural("u6", "u7")
        .outputs("u3")
        .build()
    )


def fig2_query():
    """The GTPQ of Fig. 2(b); see the module docstring for the structure."""
    from repro.query import QueryBuilder

    return (
        QueryBuilder()
        .backbone("u1", paper_label="A1")
        .backbone("u2", parent="u1", paper_label="C1")
        .backbone("u3", parent="u1", paper_label="C1")
        .backbone("u4", parent="u3", paper_label="D1")
        .predicate("u5", parent="u2", paper_label="E2")
        .predicate("u6", parent="u3", paper_label="G1")
        .predicate("u7", parent="u3", paper_label="B1")
        .predicate("u8", parent="u3", paper_label="D1")
        .predicate("u9", parent="u7", paper_label="E1")
        .predicate("u10", parent="u7", paper_label="E1")
        .structural("u2", "u5")
        .structural("u3", "!u6 | (u7 & u8)")
        .structural("u7", "u9 | u10")
        .outputs("u2", "u4")
        .build()
    )
