"""Cross-process warm restart: a second interpreter rehydrates the store.

This is the end-to-end persistence path that in-process tests cannot
cover: artifacts written by one interpreter must round-trip through a
genuinely fresh process (new pickles, new module state, new sessions)
and answer byte-identically.  The race runs ``python -m
repro.store.restart`` twice at a small scale — cold leg persists, warm
leg rehydrates — and checks the rehydration counters actually fired
rather than the warm leg silently cold-building.

The 3x first-answer speedup *floor* is a bench concern
(``benchmarks/bench_serving.py`` / ``repro-bench serving``); tier-1 only
asserts correctness and that rehydration happened, so this stays stable
on loaded CI runners.
"""

import json
import os
import pathlib
import subprocess
import sys

SRC_DIR = pathlib.Path(__file__).resolve().parents[2] / "src"


def run_restart(store, *, persist):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "repro.store.restart",
        "--store", str(store),
        "--scale", "0.025",
        "--seed", "11",
        "--codegen",
    ]
    if persist:
        command.append("--persist")
    result = subprocess.run(command, env=env, capture_output=True, text=True, check=True)
    return json.loads(result.stdout)


def test_second_process_rehydrates_and_answers_identically(tmp_path):
    store = tmp_path / "store"
    cold = run_restart(store, persist=True)
    warm = run_restart(store, persist=False)

    # The cold leg starts empty and publishes artifacts.
    assert sum(cold["rehydrated"].values()) == 0
    assert cold["persisted"]
    assert cold["store_counters"]["writes"] > 0

    # The warm leg must find them: plans, results and the codegen cache
    # all round-trip; correctness is digest-equality on every workload
    # query.
    assert warm["answer_digests"] == cold["answer_digests"]
    assert warm["result_counts"] == cold["result_counts"]
    assert warm["rehydrated"]["plans"] > 0
    assert warm["rehydrated"]["results"] > 0
    assert warm["rehydrated"]["codegen"] > 0
    assert warm["store_counters"]["hits"] > 0
    assert warm["store_counters"]["corrupt"] == 0
    assert warm["store_counters"]["stale"] == 0


def test_corrupted_store_degrades_to_cold_answers(tmp_path):
    store = tmp_path / "store"
    cold = run_restart(store, persist=True)

    # Flip a byte near the end of every artifact (payload region).
    artifacts = sorted(store.rglob("*.artifact"))
    assert artifacts, "cold leg should have published artifacts"
    for artifact in artifacts:
        blob = bytearray(artifact.read_bytes())
        blob[-3] ^= 0xFF
        artifact.write_bytes(bytes(blob))

    damaged = run_restart(store, persist=False)
    assert damaged["answer_digests"] == cold["answer_digests"]
    assert sum(damaged["rehydrated"].values()) == 0
    assert damaged["store_counters"]["corrupt"] > 0
