"""ArtifactStore failure modes + the content-fingerprint store key.

The store's contract is asymmetric: writes may fail loudly, but reads
must *never* surface a damaged or stale artifact — every failure mode
degrades to a cold build (``default``), so persistence can make answers
slower but never wrong.  Each test here manufactures one concrete
failure (truncation, bit flips, a foreign format revision, an artifact
filed under the wrong graph or kind, writers racing on one key) and
checks the read path rejects it, counts it, and cleans up.

The fingerprint tests cover the PR's headline bug: ``DataGraph.version``
is blind to in-place attribute mutation, so a version-keyed store would
serve pre-mutation answers.  The content fingerprint must move when the
version counter does not.
"""

import os
import pickle
import threading

import pytest

from repro.engine import QuerySession
from repro.graph import DataGraph
from repro.query import AttributePredicate, QueryBuilder, evaluate_naive
from repro.store import (
    SESSION_KINDS,
    STORE_FORMAT_VERSION,
    ArtifactStore,
    graph_fingerprint,
)

FP = "a" * 64  # any syntactically plausible fingerprint


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def saved(store, payload={"answer": 42}, fingerprint=FP, kind="plans"):
    store.save(fingerprint, kind, payload)
    return store.path(fingerprint, kind)


class TestRoundTrip:
    def test_save_load_round_trip(self, store):
        payload = {"plans": [1, 2, 3], "nested": {"a": frozenset({1})}}
        saved(store, payload)
        assert store.load(FP, "plans") == payload
        assert store.counters.hits == 1
        assert store.counters.writes == 1

    def test_missing_artifact_is_a_miss(self, store):
        assert store.load(FP, "plans", default="cold") == "cold"
        assert store.counters.misses == 1
        assert store.counters.corrupt == 0

    def test_no_temp_files_survive_a_save(self, store):
        target = saved(store)
        leftovers = [p for p in target.parent.iterdir() if p != target]
        assert leftovers == []

    def test_kinds_and_fingerprints_enumerate_content(self, store):
        for kind in ("plans", "results"):
            saved(store, kind=kind)
        saved(store, fingerprint="b" * 64)
        assert store.kinds(FP) == ["plans", "results"]
        assert store.fingerprints() == [FP, "b" * 64]

    def test_clear_removes_artifacts(self, store):
        saved(store)
        saved(store, fingerprint="b" * 64)
        assert store.clear(FP) == 1
        assert store.fingerprints() == ["b" * 64]
        assert store.clear() == 1
        assert store.fingerprints() == []


class TestPrune:
    """LRU eviction: oldest-mtime artifacts go first, whole files only."""

    def age(self, store, fingerprint, kind, mtime):
        os.utime(store.path(fingerprint, kind), (mtime, mtime))

    def test_rejects_negative_budget(self, store):
        with pytest.raises(ValueError, match="max_bytes"):
            store.prune(-1)

    def test_under_budget_store_evicts_nothing(self, store):
        saved(store)
        assert store.prune(10**9) == 0
        assert store.counters.evictions == 0
        assert store.load(FP, "plans") is not None

    def test_evicts_oldest_mtime_first(self, store):
        # Three artifacts, distinct ages; a budget that fits exactly one
        # must evict the two oldest and keep the newest.
        for position, kind in enumerate(("plans", "results", "candidates")):
            saved(store, kind=kind)
            self.age(store, FP, kind, 1000.0 + position)
        size = store.path(FP, "candidates").stat().st_size
        assert store.prune(size) == 2
        assert store.kinds(FP) == ["candidates"]
        assert store.counters.evictions == 2

    def test_zero_budget_empties_the_store_and_its_directories(self, store):
        saved(store)
        saved(store, fingerprint="b" * 64)
        assert store.prune(0) == 2
        assert store.fingerprints() == []
        # Emptied fingerprint directories are removed too.
        assert [p for p in store.root.iterdir()] == []

    def test_surviving_artifacts_still_load(self, store):
        saved(store, payload="old", kind="plans")
        saved(store, payload="new", kind="results")
        self.age(store, FP, "plans", 1000.0)
        self.age(store, FP, "results", 2000.0)
        store.prune(store.path(FP, "results").stat().st_size)
        assert store.load(FP, "results") == "new"
        assert store.load(FP, "plans", default="cold") == "cold"

    def test_evictions_accumulate_across_prunes(self, store):
        saved(store, kind="plans")
        assert store.prune(0) == 1
        saved(store, kind="results")
        assert store.prune(0) == 1
        assert store.counters.evictions == 2


class TestFailureModes:
    """Every corruption degrades to ``default`` and removes the file."""

    def assert_rejected(self, store, target, *, reason):
        assert store.load(FP, "plans", default="cold") == "cold"
        assert getattr(store.counters, reason) == 1
        assert store.counters.misses == 1
        assert not target.exists(), "damaged artifact should be cleaned up"

    def test_truncated_payload_is_corrupt(self, store):
        target = saved(store)
        blob = target.read_bytes()
        target.write_bytes(blob[: len(blob) - len(blob) // 3])
        self.assert_rejected(store, target, reason="corrupt")

    def test_truncated_before_header_is_corrupt(self, store):
        target = saved(store)
        target.write_bytes(target.read_bytes()[:4])
        self.assert_rejected(store, target, reason="corrupt")

    def test_flipped_payload_bytes_are_corrupt(self, store):
        target = saved(store)
        blob = bytearray(target.read_bytes())
        blob[-5] ^= 0xFF  # damage the pickle, keep magic + header intact
        target.write_bytes(bytes(blob))
        self.assert_rejected(store, target, reason="corrupt")

    def test_bad_magic_is_corrupt(self, store):
        target = saved(store)
        target.write_bytes(b"not-the-store\n" + target.read_bytes())
        self.assert_rejected(store, target, reason="corrupt")

    def test_unparseable_header_is_corrupt(self, store):
        target = saved(store)
        target.write_bytes(b"repro-store\n{oops\n")
        self.assert_rejected(store, target, reason="corrupt")

    def test_format_version_mismatch_is_stale(self, store):
        target = saved(store)
        blob = target.read_bytes()
        future = str(STORE_FORMAT_VERSION).encode()
        target.write_bytes(blob.replace(b'"format": ' + future, b'"format": 999', 1))
        self.assert_rejected(store, target, reason="stale")

    def test_wrong_fingerprint_directory_is_stale(self, store):
        # An artifact copied under another graph's directory: the header
        # still names the original fingerprint, so the read must reject.
        source = saved(store, fingerprint="b" * 64)
        target = store.path(FP, "plans")
        target.parent.mkdir(parents=True)
        target.write_bytes(source.read_bytes())
        self.assert_rejected(store, target, reason="stale")

    def test_wrong_kind_file_is_stale(self, store):
        source = saved(store, kind="results")
        target = store.path(FP, "plans")
        target.write_bytes(source.read_bytes())
        self.assert_rejected(store, target, reason="stale")

    def test_unpicklable_payload_propagates_on_save(self, store):
        with pytest.raises((pickle.PicklingError, TypeError, AttributeError)):
            store.save(FP, "plans", lambda: None)
        assert not store.path(FP, "plans").exists()
        assert store.counters.writes == 0

    def test_concurrent_writers_leave_one_complete_artifact(self, store):
        # Many threads race save() on one key; atomic rename means the
        # survivor is one *complete* artifact (some writer's payload,
        # never an interleaving) and no temp files leak.
        barrier = threading.Barrier(8)

        def write(tag):
            barrier.wait()
            for round_ in range(5):
                store.save(FP, "plans", {"writer": tag, "round": round_})

        threads = [threading.Thread(target=write, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        value = store.load(FP, "plans")
        assert value["writer"] in range(8) and value["round"] == 4
        assert [p.name for p in store.path(FP, "plans").parent.iterdir()] == ["plans.artifact"]


def two_label_graph():
    return DataGraph.from_edges("aabb", [(0, 2), (1, 3), (0, 3)])


def simple_query():
    return (
        QueryBuilder()
        .backbone("root", predicate=AttributePredicate.label("a"))
        .backbone("kid", parent="root", predicate=AttributePredicate.label("b"))
        .outputs("root")
        .build()
    )


class TestFingerprint:
    def test_identical_content_identical_fingerprint(self):
        assert graph_fingerprint(two_label_graph()) == graph_fingerprint(two_label_graph())

    def test_edge_insertion_order_does_not_matter(self):
        reordered = DataGraph.from_edges("aabb", [(0, 3), (1, 3), (0, 2)])
        assert graph_fingerprint(two_label_graph()) == graph_fingerprint(reordered)

    def test_attribute_values_are_type_tagged(self):
        five = DataGraph.from_edges("a", [])
        five.attrs(0)["x"] = 5
        text = DataGraph.from_edges("a", [])
        text.attrs(0)["x"] = "5"
        assert graph_fingerprint(five) != graph_fingerprint(text)

    def test_in_place_attribute_mutation_moves_the_fingerprint(self):
        """The version counter misses this exact mutation; the key must not."""
        graph = two_label_graph()
        before_fp = graph_fingerprint(graph)
        before_version = graph.version
        graph.attrs(0)["price"] = 99  # in-place: invisible to .version
        assert graph.version == before_version
        assert graph_fingerprint(graph) != before_fp


class TestSessionStoreKey:
    def test_mutated_graph_never_hits_the_old_artifacts(self, tmp_path):
        """Regression for the version-counter blindness bug.

        A fresh process over a graph whose attributes were edited
        in-place must MISS every persisted artifact (different content
        fingerprint) and recompute the now-different answer, instead of
        rehydrating pre-mutation caches.
        """
        graph = two_label_graph()
        query = simple_query()
        warm = QuerySession(graph, store=tmp_path / "store")
        baseline = warm.evaluate(query)
        assert baseline == evaluate_naive(query, graph)
        warm.persist()
        warm.close()

        # Same store, but node 0's label flips under the version counter.
        graph.attrs(0)["label"] = "z"
        restarted = QuerySession(graph, store=tmp_path / "store")
        assert sum(restarted.store_rehydrated.values()) == 0
        assert restarted.evaluate(query) == evaluate_naive(query, graph)
        assert restarted.evaluate(query) != baseline
        restarted.close()

    def test_unmutated_graph_rehydrates_and_answers_identically(self, tmp_path):
        graph = two_label_graph()
        query = simple_query()
        warm = QuerySession(graph, store=tmp_path / "store")
        baseline = warm.evaluate(query)
        persisted = warm.persist()
        assert set(persisted) <= set(SESSION_KINDS) | {"profile_keys"}
        warm.close()

        restarted = QuerySession(graph, store=tmp_path / "store")
        assert sum(restarted.store_rehydrated.values()) > 0
        assert restarted.evaluate(query) == baseline
        info = restarted.cache_info()
        assert info["store"]["rehydrated"] > 0
        restarted.close()
