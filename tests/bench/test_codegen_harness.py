"""Tier-1 coverage of the plan-codegen harness and CLI path.

The heavyweight comparison lives in ``benchmarks/bench_codegen.py``
(bench marker); these tests run the same machinery at a tiny scale so
``measure_codegen`` and the ``repro-bench codegen`` subcommand stay
covered by the default suite.
"""

from repro.bench import CodegenMeasurement, CodegenQueryPoint, measure_codegen
from repro.bench.cli import main as bench_main
from repro.datasets import fig7_query, generate_xmark


def tiny_workload():
    return [
        (variant, fig7_query(variant, person_group=2, item_group=4, seller_group=6))
        for variant in ("q1", "q2")
    ]


class TestMeasureCodegen:
    def test_small_xmark_workload_compiles_and_agrees(self):
        graph = generate_xmark(scale=0.02, seed=97).graph
        measurement = measure_codegen(graph, tiny_workload(), rounds=3)
        assert measurement.mode == "auto"
        assert measurement.mismatches == 0
        assert measurement.uncompiled == 0
        assert len(measurement.points) == 2
        rows = measurement.rows()
        assert [row["query"] for row in rows] == ["q1", "q2"]
        assert all(row["codegen_ms"] > 0 for row in rows)

    def test_closure_mode_agrees_too(self):
        graph = generate_xmark(scale=0.02, seed=97).graph
        measurement = measure_codegen(graph, tiny_workload(), rounds=2, mode="closure")
        assert measurement.mismatches == 0
        assert measurement.uncompiled == 0

    def test_aggregate_speedup_handles_zero_denominator(self):
        empty = CodegenMeasurement(points=[], mode="auto", mismatches=0, uncompiled=0)
        assert empty.speedup == 0.0
        degenerate = CodegenQueryPoint(name="q", interpreted_ms=1.0, codegen_ms=0.0, results=0)
        assert degenerate.speedup == 0.0

    def test_aggregate_speedup_is_total_over_total(self):
        measurement = CodegenMeasurement(
            points=[
                CodegenQueryPoint(name="a", interpreted_ms=3.0, codegen_ms=1.0, results=1),
                CodegenQueryPoint(name="b", interpreted_ms=1.0, codegen_ms=1.0, results=0),
            ],
            mode="auto",
            mismatches=0,
            uncompiled=0,
        )
        assert measurement.speedup == 2.0


class TestCodegenCli:
    def test_codegen_subcommand_runs(self, capsys):
        code = bench_main(["--scale", "0.02", "codegen", "--rounds", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregate warm speedup" in out
        assert "interpreted_ms" in out

    def test_codegen_subcommand_rejects_bad_rounds(self, capsys):
        code = bench_main(["--scale", "0.02", "codegen", "--rounds", "0"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_codegen_subcommand_enforces_an_unreachable_floor(self, capsys):
        code = bench_main(
            ["--scale", "0.02", "codegen", "--rounds", "2", "--enforce-floor", "--floor", "1e9"]
        )
        assert code == 1
        assert "below the floor" in capsys.readouterr().err
