"""Tests for the benchmark harness (AlgorithmSuite, table formatting)."""

import pytest

from repro.bench import AlgorithmSuite, format_table, mean
from repro.datasets import exp2_query, fig7_query, generate_xmark


@pytest.fixture(scope="module")
def suite():
    xmark = generate_xmark(scale=0.02, seed=55)

    def crosses(query):
        out = set()
        for node_id in ("person", "person2", "item_elem"):
            if node_id in query.parent:
                out.add(node_id)
        if query.parent.get("item") == "item_ref":
            out.add("item")
        return out

    return AlgorithmSuite(
        xmark.graph,
        forest_edges=xmark.forest_edges,
        cross_children_of=crosses,
    )


class TestAlgorithmSuite:
    def test_algorithm_roster(self, suite):
        assert suite.algorithms() == [
            "GTEA", "TwigStackD", "HGJoin+", "HGJoin*",
            "TwigStack", "Twig2Stack",
        ]

    def test_all_algorithms_agree_on_conjunctive_query(self, suite):
        query = fig7_query("q1", person_group=1)
        reference = None
        for name in suite.algorithms():
            measurement = suite.run(name, query)
            assert measurement.seconds >= 0
            assert measurement.result_count == len(measurement.answer)
            if reference is None:
                reference = measurement.answer
            else:
                assert measurement.answer == reference, name

    def test_gtpq_runs_via_decomposition(self, suite):
        query = exp2_query("DIS1", person_group=1, seller_group=2, item_group=1)
        gtea = suite.run("GTEA", query)
        twigstackd = suite.run("TwigStackD", query)
        twigstack = suite.run("TwigStack", query)
        assert gtea.answer == twigstackd.answer == twigstack.answer

    def test_hgjoin_rejects_gtpq(self, suite):
        query = exp2_query("DIS1", person_group=1, seller_group=2, item_group=1)
        with pytest.raises(ValueError, match="cannot evaluate GTPQs"):
            suite.run("HGJoin+", query)

    def test_unknown_algorithm(self, suite):
        with pytest.raises(ValueError, match="unknown algorithm"):
            suite.run("nope", fig7_query("q1"))

    def test_hgjoin_best_plan_adjustment(self, suite):
        query = fig7_query("q1", person_group=1)
        measurement = suite.run("HGJoin+", query)
        stats = measurement.stats
        assert stats.phase_seconds["best_plan"] <= stats.phase_seconds["all_plans"]
        # Reported time charges the best plan only (paper convention).
        assert measurement.seconds <= stats.phase_seconds["all_plans"] + 1.0

    def test_measurement_millis(self, suite):
        measurement = suite.run("GTEA", fig7_query("q1", person_group=1))
        assert measurement.millis == pytest.approx(measurement.seconds * 1e3)


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], ["xxx", 4]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "2.500" in lines[3]
        assert "xxx" in lines[4]

    def test_format_table_empty_rows(self):
        text = format_table("T", ["col"], [])
        assert "col" in text

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0
