"""Tier-1 coverage of the adaptive-executor harness and CLI path.

The heavyweight sweep lives in ``benchmarks/bench_adaptive.py`` (bench
marker); these tests run the same machinery at a tiny scale so the
harness, the skewed workload generator, and the ``repro-bench
adaptive`` subcommand stay covered by the default suite.
"""

from repro.bench import AdaptiveMeasurement, measure_adaptive
from repro.bench.cli import main as bench_main
from repro.datasets import skewed_workload
from repro.query import query_fingerprint


class TestMeasureAdaptive:
    def test_small_skewed_workload_meets_the_bar(self):
        graph, queries = skewed_workload(scale=2, repeats=3)
        measurement = measure_adaptive(graph, queries)
        assert measurement.mismatches == 0
        assert measurement.queries == len(queries)
        assert measurement.prune_ops_saved >= 0.10
        assert measurement.reordered_queries >= 1
        assert measurement.early_exits >= 1
        row = measurement.row()
        assert row["ops_adaptive"] < row["ops_static"]

    def test_saved_fraction_handles_empty_workload(self):
        empty = AdaptiveMeasurement(
            queries=0,
            prune_ops_static=0,
            prune_ops_adaptive=0,
            reordered_queries=0,
            early_exits=0,
            static_seconds=0.0,
            adaptive_seconds=0.0,
            mismatches=0,
        )
        assert empty.prune_ops_saved == 0.0

    def test_skewed_workload_is_deterministic(self):
        _, first = skewed_workload(scale=2, repeats=2, seed=5)
        _, second = skewed_workload(scale=2, repeats=2, seed=5)
        assert [query_fingerprint(q) for q in first] == [
            query_fingerprint(q) for q in second
        ]


class TestAdaptiveCli:
    def test_adaptive_subcommand_runs(self, capsys):
        code = bench_main(["adaptive", "--workload-scale", "1", "--repeats", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "prune ops saved" in out
        assert "ops_adaptive" in out

    def test_adaptive_subcommand_rejects_bad_scale(self, capsys):
        code = bench_main(["adaptive", "--workload-scale", "0"])
        assert code == 2
        assert "error" in capsys.readouterr().err
