"""Tier-1 coverage of the parallel-scaling harness and CLI path.

The heavyweight sweep lives in ``benchmarks/bench_parallel.py`` (bench
marker); these tests run the same machinery at a tiny scale so the
harness, the funnel workload generator, and the ``repro-bench
parallel`` subcommand stay covered by the default suite.  The
``"serial"`` backend keeps the runs deterministic and in-process.
"""

from repro.bench import measure_parallel
from repro.bench.cli import main as bench_main
from repro.datasets import funnel_workload, parallel_workload
from repro.query import query_fingerprint


class TestMeasureParallel:
    def test_small_funnel_workload_is_byte_identical(self):
        graph, queries = parallel_workload(scale=1, queries=2)
        measurement = measure_parallel(
            graph, queries, worker_counts=(1, 2), backend="serial"
        )
        assert measurement.mismatches == 0
        assert measurement.survivor_mismatches == 0
        assert measurement.queries == len(queries)
        assert measurement.backend == "serial"
        assert measurement.speedup(1) == 1.0
        assert measurement.wall_speedup(1) == 1.0
        rows = measurement.rows()
        assert [row["workers"] for row in rows] == [1, 2]
        # Two shards per node-with-enough-candidates: the sharded point
        # must dispatch strictly more pool tasks than the baseline.
        assert rows[1]["shard_tasks"] > rows[0]["shard_tasks"]

    def test_end_to_end_funnel_exercises_every_sharded_phase(self):
        # The middle-funnel workload must drive the sharded upward pass
        # and report per-phase wall times in every row.
        graph, queries = funnel_workload(scale=1, queries=2)
        measurement = measure_parallel(
            graph, queries, worker_counts=(1, 2), backend="serial"
        )
        assert measurement.mismatches == 0
        assert measurement.survivor_mismatches == 0
        for row in measurement.rows():
            assert row["upward_tasks"] > 0
            assert row["wall_ms"] >= row["prune_ms"] >= 0
            assert {"scan_ms", "upward_ms", "wall_speedup", "steals"} <= set(row)

    def test_funnel_workloads_are_deterministic(self):
        _, first = parallel_workload(scale=1, queries=3, seed=9)
        _, second = parallel_workload(scale=1, queries=3, seed=9)
        assert [query_fingerprint(q) for q in first] == [
            query_fingerprint(q) for q in second
        ]
        _, first = funnel_workload(scale=1, queries=6, seed=9)
        _, second = funnel_workload(scale=1, queries=6, seed=9)
        prints = [query_fingerprint(q) for q in first]
        assert prints == [query_fingerprint(q) for q in second]
        # Every copy gets a distinct fingerprint (distinct label pairs),
        # so the sweep never collapses into plan-cache hits.
        assert len(set(prints)) == len(prints)


class TestParallelCli:
    def test_parallel_subcommand_runs(self, capsys):
        code = bench_main(
            [
                "parallel",
                "--workload-scale",
                "1",
                "--queries",
                "2",
                "--workers",
                "1",
                "2",
                "--backend",
                "serial",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sharded pipeline, end to end" in out
        assert "prune-phase speedup at 2 workers" in out
        assert "end-to-end wall speedup at 2 workers" in out

    def test_parallel_subcommand_enforces_floor_on_serial_backend(self, capsys):
        # On a serial backend (and few-core runners) --enforce-floor
        # falls back to the bounded-overhead budget plus the stealing
        # sanity probe; a generous slack must pass.
        code = bench_main(
            [
                "parallel",
                "--workload-scale",
                "1",
                "--queries",
                "2",
                "--workers",
                "1",
                "2",
                "--backend",
                "serial",
                "--enforce-floor",
                "--floor-slack",
                "5.0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out

    def test_parallel_subcommand_rejects_bad_scale(self, capsys):
        code = bench_main(["parallel", "--workload-scale", "0"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_parallel_subcommand_requires_the_baseline_worker_count(self, capsys):
        code = bench_main(["parallel", "--workers", "2", "4"])
        assert code == 2
        assert "include 1" in capsys.readouterr().err

    def test_parallel_subcommand_rejects_unknown_backend(self, capsys):
        code = bench_main(["parallel", "--workers", "1", "--backend", "fiber"])
        assert code == 2
        assert "error" in capsys.readouterr().err
