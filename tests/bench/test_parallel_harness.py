"""Tier-1 coverage of the parallel-scaling harness and CLI path.

The heavyweight sweep lives in ``benchmarks/bench_parallel.py`` (bench
marker); these tests run the same machinery at a tiny scale so the
harness, the funnel workload generator, and the ``repro-bench
parallel`` subcommand stay covered by the default suite.  The
``"serial"`` backend keeps the runs deterministic and in-process.
"""

from repro.bench import measure_parallel
from repro.bench.cli import main as bench_main
from repro.datasets import parallel_workload
from repro.query import query_fingerprint


class TestMeasureParallel:
    def test_small_funnel_workload_is_byte_identical(self):
        graph, queries = parallel_workload(scale=1, queries=2)
        measurement = measure_parallel(
            graph, queries, worker_counts=(1, 2), backend="serial"
        )
        assert measurement.mismatches == 0
        assert measurement.survivor_mismatches == 0
        assert measurement.queries == len(queries)
        assert measurement.backend == "serial"
        assert measurement.speedup(1) == 1.0
        rows = measurement.rows()
        assert [row["workers"] for row in rows] == [1, 2]
        # Two shards per node-with-enough-candidates: the sharded point
        # must dispatch strictly more pool tasks than the baseline.
        assert rows[1]["shard_tasks"] > rows[0]["shard_tasks"]

    def test_funnel_workload_is_deterministic(self):
        _, first = parallel_workload(scale=1, queries=3, seed=9)
        _, second = parallel_workload(scale=1, queries=3, seed=9)
        assert [query_fingerprint(q) for q in first] == [
            query_fingerprint(q) for q in second
        ]


class TestParallelCli:
    def test_parallel_subcommand_runs(self, capsys):
        code = bench_main(
            [
                "parallel",
                "--workload-scale",
                "1",
                "--queries",
                "2",
                "--workers",
                "1",
                "2",
                "--backend",
                "serial",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sharded prune execution" in out
        assert "prune-phase speedup at 2 workers" in out

    def test_parallel_subcommand_rejects_bad_scale(self, capsys):
        code = bench_main(["parallel", "--workload-scale", "0"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_parallel_subcommand_requires_the_baseline_worker_count(self, capsys):
        code = bench_main(["parallel", "--workers", "2", "4"])
        assert code == 2
        assert "include 1" in capsys.readouterr().err

    def test_parallel_subcommand_rejects_unknown_backend(self, capsys):
        code = bench_main(["parallel", "--workers", "1", "--backend", "fiber"])
        assert code == 2
        assert "error" in capsys.readouterr().err
