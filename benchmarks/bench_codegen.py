"""Plan codegen: specialized plan functions vs the interpreted pipeline.

Every Fig. 7 query is compiled once and specialized once
(``repro.plan.codegen``), then the same plan runs warm through
``GTEA.execute`` with and without its compiled function — exactly what
a warm ``QuerySession(codegen="auto")`` executes per evaluation.  The
headline metric is the aggregate warm speedup (total interpreted time
over total codegen time); answers are asserted identical per round, and
both backend modes (emitted source and debuggable closures) must agree
with the interpreted pipeline.

Acceptance bar: the source mode's aggregate warm speedup must reach
2x locally (1.5x under CI, where shared runners add noise), with every
workload query actually specialized — zero interpreted fallbacks.

Results land in ``benchmarks/reports/codegen.json`` (machine-readable)
and as a table on stdout.
"""

import json
import os
import pathlib

from repro.bench import format_table, measure_codegen
from repro.datasets import fig7_query, generate_xmark

from .conftest import emit_report

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

#: aggregate warm-speedup floor: relaxed on shared CI runners.
FLOOR = 1.5 if os.environ.get("CI") else 2.0
ROUNDS = 7


def fig7_workload():
    return [
        (variant, fig7_query(variant, person_group=2, item_group=4, seller_group=6))
        for variant in ("q1", "q2", "q3")
    ]


def test_codegen_speedup_report(xmark_datasets):
    graph = xmark_datasets[0.05].graph
    queries = fig7_workload()

    source = measure_codegen(graph, queries, rounds=ROUNDS, mode="auto")
    assert source.mismatches == 0
    assert source.uncompiled == 0

    # Closure mode is the debuggability fallback, not the fast path: it
    # must agree exactly, but carries no speedup bar.
    closure = measure_codegen(graph, queries, rounds=ROUNDS, mode="closure")
    assert closure.mismatches == 0
    assert closure.uncompiled == 0

    rows = [[*row.values()] for row in source.rows()]
    payload = {
        "floor": FLOOR,
        "rounds": ROUNDS,
        "graph_nodes": graph.num_nodes,
        "aggregate_speedup": round(source.speedup, 3),
        "closure_aggregate_speedup": round(closure.speedup, 3),
        "queries": {row["query"]: row for row in source.rows()},
    }

    emit_report(
        "codegen",
        format_table(
            f"Plan codegen vs interpreted pipeline (warm, Fig. 7 queries, "
            f"n={graph.num_nodes}, aggregate {source.speedup:.2f}x)",
            ["query", "interpreted_ms", "codegen_ms", "speedup", "results"],
            rows,
        ),
    )
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / "codegen.json").write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert source.speedup >= FLOOR, (
        f"aggregate warm speedup {source.speedup:.2f}x is below the "
        f"{FLOOR:.1f}x floor"
    )
