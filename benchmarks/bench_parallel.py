"""Sharded execution: worker-count scaling on the funnel workloads.

Two modes, one report:

* **prune-phase mode** — the workload of
  ``repro.datasets.parallel_workload`` funnels into a tiny target slice
  at the *bottom* of the pattern, so the downward prune dominates and
  the headline metric is the summed ``prune_downward`` phase time;
* **end-to-end mode** — ``repro.datasets.funnel_workload`` puts the
  tiny slice in the *middle* (broad head, broad output tail), so the
  upward prune carries work of the same order as the downward bulk and
  the headline metric is the whole workload's **wall time**.  This is
  the mode that exercises every sharded mechanism at once: sharded
  downward and upward prune, the overlapped candidate scan, and work
  stealing across skewed shards.

The same compiled plans run through ``repro.engine.parallel``'s sharded
executor at 1, 2 and 4 workers (shards = workers, hybrid routing).

Correctness is asserted unconditionally: answers must match the serial
engine exactly, and every worker count's per-node survivor sets (after
both prune phases) and prune-op counts must be byte-identical to the
serial run (the determinism contract of ``repro.graph.partition``).

The scaling bars — >= 1.5x prune-phase speedup and >= 1.5x end-to-end
wall speedup at 4 workers vs 1 — only enforce on machines with >= 4
usable cores (CI runners): sharding cannot beat the clock on a single
core, where the sweep still verifies determinism and bounded overhead.
(Locally, on an idle >= 4-core machine, the end-to-end mode typically
clears 2.5x — the workload's sharded phases are ~90% of its wall.)

Results land in ``benchmarks/reports/parallel.json`` (machine-readable)
and as tables on stdout.
"""

import json
import os
import pathlib

from repro.bench import format_table, measure_parallel
from repro.datasets import funnel_workload, parallel_workload

from .conftest import emit_report

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

#: (scale, queries) sweep — graph nodes are ``600 * scale``.
SCALES = ((2, 4), (4, 6))
SEED = 47
WORKER_COUNTS = (1, 2, 4)
#: prune-phase speedup required at 4 workers, enforced on >= 4 cores.
SPEEDUP_FLOOR = 1.5
#: end-to-end wall speedup required at 4 workers, enforced on >= 4 cores.
WALL_SPEEDUP_FLOOR = 1.5

_COLUMNS = [
    "scale",
    "backend",
    "workers",
    "scan_ms",
    "prune_ms",
    "upward_ms",
    "wall_ms",
    "speedup",
    "wall_speedup",
    "shard_tasks",
    "upward_tasks",
    "steals",
]


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


_PAYLOAD = {
    "seed": SEED,
    "worker_counts": list(WORKER_COUNTS),
    "usable_cores": usable_cores(),
    "scales": {},
    "end_to_end": {},
}


def _sweep(build_workload, section, floor_metric):
    """Run the worker sweep over one workload family; returns table rows."""
    enforce = usable_cores() >= max(WORKER_COUNTS)
    rows = []
    for scale, queries in SCALES:
        graph, workload = build_workload(scale=scale, queries=queries, seed=SEED)
        measurement = measure_parallel(graph, workload, worker_counts=WORKER_COUNTS)
        # Determinism contract: exact answers, byte-identical survivors
        # and prune-op counts against the serial engine.
        assert measurement.mismatches == 0
        assert measurement.survivor_mismatches == 0
        for row in measurement.rows():
            rows.append([f"{scale}x{queries}", measurement.backend, *row.values()])
        top = max(WORKER_COUNTS)
        _PAYLOAD[section][f"{scale}x{queries}"] = {
            "graph_nodes": graph.num_nodes,
            "backend": measurement.backend,
            "strategy": measurement.strategy,
            "speedup_at_max_workers": round(measurement.speedup(top), 3),
            "wall_speedup_at_max_workers": round(measurement.wall_speedup(top), 3),
            "points": measurement.rows(),
        }
        if enforce:
            observed, floor, label = floor_metric(measurement, top)
            assert observed >= floor, (
                f"{label} at {top} workers below {floor}x on scale {scale} "
                f"(got {observed:.2f}x)"
            )
    return rows


def _write_report() -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / "parallel.json").write_text(
        json.dumps(_PAYLOAD, indent=2, sort_keys=True) + "\n"
    )


def test_parallel_scaling_report():
    rows = _sweep(
        parallel_workload,
        "scales",
        lambda m, top: (m.speedup(top), SPEEDUP_FLOOR, "prune-phase speedup"),
    )
    emit_report(
        "parallel",
        format_table(
            "Sharded prune execution: worker-count scaling (downward funnel)",
            _COLUMNS,
            rows,
        ),
    )
    _write_report()


def test_parallel_end_to_end_report():
    rows = _sweep(
        funnel_workload,
        "end_to_end",
        lambda m, top: (m.wall_speedup(top), WALL_SPEEDUP_FLOOR, "wall speedup"),
    )
    emit_report(
        "parallel-end-to-end",
        format_table(
            "Sharded pipeline: end-to-end worker-count scaling (middle funnel)",
            _COLUMNS,
            rows,
        ),
    )
    _write_report()
