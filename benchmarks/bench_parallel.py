"""Sharded prune execution: worker-count scaling on the funnel workload.

The workload of ``repro.datasets.parallel_workload`` is built so the
downward prune phase dominates (broad AD candidate sets valuated against
a tiny early target slice) and divides evenly across candidate shards.
The same compiled plans run through ``repro.engine.parallel``'s sharded
executor at 1, 2 and 4 workers (shards = workers, range routing), and
the headline metric is the summed ``prune_downward`` phase time.

Correctness is asserted unconditionally: answers must match the serial
engine exactly, and every worker count's per-node survivor sets must be
byte-identical to the single-shard run (the determinism contract of
``repro.graph.partition``).

The scaling bar — >= 1.5x prune-phase speedup at 4 workers vs 1 — only
enforces on machines with >= 4 usable cores (CI runners): sharding
cannot beat the clock on a single core, where the sweep still verifies
determinism and bounded overhead.

Results land in ``benchmarks/reports/parallel.json`` (machine-readable)
and as a table on stdout.
"""

import json
import os
import pathlib

from repro.bench import format_table, measure_parallel
from repro.datasets import parallel_workload

from .conftest import emit_report

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

#: (scale, queries) sweep — graph nodes are ``600 * scale``.
SCALES = ((2, 4), (4, 6))
SEED = 47
WORKER_COUNTS = (1, 2, 4)
#: prune-phase speedup required at 4 workers, enforced on >= 4 cores.
SPEEDUP_FLOOR = 1.5


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def test_parallel_scaling_report():
    rows = []
    payload = {
        "seed": SEED,
        "worker_counts": list(WORKER_COUNTS),
        "usable_cores": usable_cores(),
        "scales": {},
    }
    enforce = usable_cores() >= max(WORKER_COUNTS)
    for scale, queries in SCALES:
        graph, workload = parallel_workload(scale=scale, queries=queries, seed=SEED)
        measurement = measure_parallel(graph, workload, worker_counts=WORKER_COUNTS)
        # Determinism contract: exact answers, byte-identical survivors.
        assert measurement.mismatches == 0
        assert measurement.survivor_mismatches == 0
        for point, row in zip(measurement.points, measurement.rows()):
            rows.append([f"{scale}x{queries}", measurement.backend, *row.values()])
        payload["scales"][f"{scale}x{queries}"] = {
            "graph_nodes": graph.num_nodes,
            "backend": measurement.backend,
            "strategy": measurement.strategy,
            "speedup_at_max_workers": round(measurement.speedup(max(WORKER_COUNTS)), 3),
            "points": measurement.rows(),
        }
        if enforce:
            assert measurement.speedup(max(WORKER_COUNTS)) >= SPEEDUP_FLOOR, (
                f"prune-phase speedup at {max(WORKER_COUNTS)} workers below "
                f"{SPEEDUP_FLOOR}x on scale {scale}"
            )

    emit_report(
        "parallel",
        format_table(
            "Sharded prune execution: worker-count scaling (funnel workload)",
            ["scale", "backend", "workers", "prune_ms", "wall_ms", "speedup", "shard_tasks"],
            rows,
        ),
    )
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / "parallel.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
