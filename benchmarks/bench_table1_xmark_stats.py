"""Table 1 — statistics of the XMark datasets.

Regenerates the paper's dataset-statistics table for the scaled ladder
and benchmarks dataset generation itself (the substrate every other
experiment builds on).
"""

from repro.bench import format_table
from repro.datasets import generate_xmark, table1_row

from .conftest import XMARK_SCALES, emit_report


def test_table1_report(xmark_datasets, benchmark):
    rows = []

    def collect():
        rows.clear()
        for scale in XMARK_SCALES:
            row = table1_row(xmark_datasets[scale])
            rows.append([row["scale"], row["nodes"], row["edges"]])
        return rows

    benchmark.pedantic(collect, rounds=1, iterations=1)
    emit_report("table1_xmark_stats", format_table(
        "Table 1: Statistics of XMark-like datasets (scaled ladder 1:2:3:4:8)",
        ["scale", "nodes", "edges"],
        rows,
    ))
    # Monotone growth along the ladder, roughly linear in scale.
    node_counts = [row[1] for row in rows]
    assert node_counts == sorted(node_counts)
    assert node_counts[-1] > 6 * node_counts[0]


def test_generate_xmark_smallest(benchmark):
    result = benchmark.pedantic(
        lambda: generate_xmark(scale=XMARK_SCALES[0], seed=97),
        rounds=3, iterations=1,
    )
    assert result.graph.num_nodes > 0


def test_generate_xmark_largest(benchmark):
    result = benchmark.pedantic(
        lambda: generate_xmark(scale=XMARK_SCALES[-1], seed=97),
        rounds=3, iterations=1,
    )
    assert result.graph.num_nodes > 0
