"""Planner benchmark: compile-time overhead and minimized-query payoff.

Two questions about the compile → execute pipeline:

1. **What does compilation cost?**  Mean ``compile_query`` wall time
   over the paper workloads (Fig. 7 conjunctive queries on XMark,
   Example-1 GTPQs with OR/NOT on DBLP).  Compilation runs once per
   distinct query in a warm session — the overhead amortizes across
   repeats — but it must stay small against a single evaluation.

2. **What does minimization buy?**  Queries carrying redundant
   predicate subtrees (duplicates of backbone branches — the Fig. 2(b)
   ``u8 ⊴ u4`` situation at workload scale) are shrunk at compile time;
   the executor then fetches and prunes fewer candidate sets.  We
   compare warm per-evaluation time of the raw query (optimizer off)
   against the minimized plan, plus the O(1) constant-empty path for an
   unsatisfiable query.

Results land in ``benchmarks/reports/planner.json`` (machine-readable,
next to the session-cache report) and as a table on stdout.
"""

import json
import pathlib
import time

from repro.datasets import dblp_example_query, fig7_query, generate_dblp
from repro.engine import GTEA
from repro.plan import compile_query
from repro.query import QueryBuilder, query_from_dict, query_to_dict

from .conftest import emit_report
from repro.bench import format_table

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

#: evaluation repetitions per timing sample.
ROUNDS = 5


def redundant_fig7(variant: str) -> object:
    """A Fig. 7 query plus predicate duplicates of backbone branches.

    Each duplicate is subsumed by the backbone sibling it copies, so
    Algorithm 1 removes it; the raw pipeline pays full candidate
    fetching and pruning for every duplicate.
    """
    spec = query_to_dict(
        fig7_query(variant, person_group=2, item_group=4, seller_group=6)
    )
    for source in ("bidder", "current"):
        spec["nodes"].append({
            "id": f"dup_{source}",
            "kind": "predicate",
            "parent": "open_auction",
            "edge": "pc",
            "atoms": [["label", "=", source]],
        })
    return query_from_dict(spec)


def unsatisfiable_query() -> object:
    return (
        QueryBuilder()
        .backbone("open_auction", label="open_auction")
        .predicate("bidder", parent="open_auction", label="bidder")
        .structural("open_auction", "bidder & !bidder")
        .outputs("open_auction")
        .build()
    )


def _mean_eval_ms(engine, query, plan=None) -> float:
    samples = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        engine.evaluate_with_stats(query, plan=plan)
        samples.append(time.perf_counter() - started)
    return 1e3 * sum(samples) / len(samples)


def test_planner_report(xmark_datasets):
    graph = xmark_datasets[0.05].graph
    dblp = generate_dblp()

    # 1. compile-time overhead over the paper workloads.
    compile_samples = []
    workload = [
        (graph, fig7_query("q1", person_group=2, item_group=4, seller_group=6)),
        (graph, fig7_query("q2", person_group=2, item_group=4, seller_group=6)),
        (graph, fig7_query("q3", person_group=2, item_group=4, seller_group=6)),
        (dblp.graph, dblp_example_query("q1")),
        (dblp.graph, dblp_example_query("q2")),
        (dblp.graph, dblp_example_query("q3")),
    ]
    for data, query in workload:
        started = time.perf_counter()
        compile_query(data, query)
        compile_samples.append(time.perf_counter() - started)
    compile_ms = 1e3 * sum(compile_samples) / len(compile_samples)

    # 2. warm payoff: minimized plan vs raw query, per variant.
    raw_engine = GTEA(graph, optimize=False)
    opt_engine = GTEA(graph, optimize=True)
    rows = []
    payload = {"compile_ms_mean": compile_ms, "variants": {}}
    for variant in ("q1", "q2", "q3"):
        query = redundant_fig7(variant)
        plan = opt_engine.compile(query)
        assert plan.normalized.removed_nodes  # the duplicates are dropped
        raw_ms = _mean_eval_ms(raw_engine, query)
        minimized_ms = _mean_eval_ms(opt_engine, query, plan=plan)
        speedup = raw_ms / minimized_ms if minimized_ms else 0.0
        rows.append([
            variant,
            len(query.nodes),
            len(plan.query.nodes),
            raw_ms,
            minimized_ms,
            speedup,
        ])
        payload["variants"][variant] = {
            "nodes_raw": len(query.nodes),
            "nodes_minimized": len(plan.query.nodes),
            "raw_ms": raw_ms,
            "minimized_ms": minimized_ms,
            "speedup": speedup,
        }

    # 3. the constant-empty path for unsatisfiable queries.
    unsat = unsatisfiable_query()
    unsat_plan = opt_engine.compile(unsat)
    assert unsat_plan.unsatisfiable
    unsat_ms = _mean_eval_ms(opt_engine, unsat, plan=unsat_plan)
    _, unsat_stats = opt_engine.evaluate_with_stats(unsat)
    assert unsat_stats.index_lookups == 0
    assert unsat_stats.input_nodes == 0
    payload["unsat_ms"] = unsat_ms
    rows.append(["unsat", len(unsat.nodes), 0, None, unsat_ms, None])

    emit_report("planner", format_table(
        f"Planner: compile {compile_ms:.3f} ms mean; "
        "minimized vs raw evaluation (XMark scale 0.05)",
        ["query", "nodes_raw", "nodes_min", "raw_ms", "min_ms", "speedup"],
        rows,
    ))
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / "planner.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # Sanity bars: compilation is cheap, and evaluating the minimized
    # query is no slower than the raw one (loose bound — wall time).
    for variant_payload in payload["variants"].values():
        assert variant_payload["minimized_ms"] <= variant_payload["raw_ms"] * 1.25
    assert unsat_ms < compile_ms + 1.0  # the O(1) path does no graph work
