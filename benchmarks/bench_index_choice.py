"""Per-query index choice: lazily-built partial indexes vs a full build.

The enclave workload (``repro.datasets.index_choice_workload``) queries
a tiny rare-label region of a graph big enough that the ladder's full
3-hop build dominates a cold first answer.  Per-query costing
(``repro.plan.cost.choose_scoped_index``) notices the label posting
lists bound the footprint, builds a transitive closure over just the
candidate cone, and skips the full build entirely; the pinned-full arm
pays it.  Both arms are measured truly cold — fresh sessions per round,
index construction inside the timed region — and answers are asserted
byte-identical every round.

Acceptance bar: the aggregate cold first-answer speedup must reach 2x
locally (1.5x under CI, where shared runners add noise), with every
workload query actually served by a partial index — zero fallbacks.
A warm leg then re-evaluates through one session and must serve every
footprint from the pool (no rebuilds).

Results land in ``benchmarks/reports/index_choice.json``
(machine-readable) and as a table on stdout.
"""

import json
import os
import pathlib

from repro.bench import format_table, measure_index_choice
from repro.datasets import index_choice_workload
from repro.engine import QuerySession

from .conftest import emit_report

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

#: aggregate cold-speedup floor: relaxed on shared CI runners.
FLOOR = 1.5 if os.environ.get("CI") else 2.0
SCALE = 2
ROUNDS = 3


def test_index_choice_speedup_report():
    graph, queries = index_choice_workload(scale=SCALE, queries=4)
    named = [(f"q{position}", query) for position, query in enumerate(queries)]

    measurement = measure_index_choice(graph, named, rounds=ROUNDS)
    assert measurement.mismatches == 0
    assert measurement.fallbacks == 0
    assert measurement.partial_picked == len(named), (
        "every enclave query must exercise the partial arm"
    )

    # Warm leg: one session across the workload — every distinct
    # footprint builds once, every repeat is a pool hit.
    warm = QuerySession(graph)
    for __, query in named:
        warm.evaluate(query)
    warm_hits_before = warm.cache_info()["partial"]["hits"]
    for __, query in named:
        # Drop cached answers so the repeats exercise the partial pool
        # rather than returning straight from the result cache.
        warm.result_cache.clear()
        stats = warm.evaluate_with_stats(query)[1]
        assert stats.partial_builds == 0, "warm repeats must not rebuild"
    assert warm.cache_info()["partial"]["hits"] > warm_hits_before

    rows = [[*row.values()] for row in measurement.rows()]
    payload = {
        "floor": FLOOR,
        "rounds": ROUNDS,
        "graph_nodes": graph.num_nodes,
        "full_index": measurement.full_index,
        "aggregate_speedup": round(measurement.speedup, 3),
        "queries": {row["query"]: row for row in measurement.rows()},
    }

    emit_report(
        "index_choice",
        format_table(
            f"Partial vs full index, cold first answer (enclave workload, "
            f"n={graph.num_nodes}, full={measurement.full_index}, "
            f"aggregate {measurement.speedup:.2f}x)",
            ["query", "full_ms", "partial_ms", "speedup", "footprint", "results"],
            rows,
        ),
    )
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / "index_choice.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    assert measurement.speedup >= FLOOR, (
        f"aggregate cold first-answer speedup {measurement.speedup:.2f}x is "
        f"below the {FLOOR:.1f}x floor"
    )
