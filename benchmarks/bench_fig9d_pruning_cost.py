"""Fig. 9(d) — GTEA's pruning vs TwigStackD's pre-filtering.

The paper isolates the candidate-filtering stage: GTEA's contour-based
two-round pruning against TwigStackD's two whole-graph traversals.
Expected shape: the pruning process is significantly cheaper and scales
better with query size, because the pre-filter's cost is tied to the
graph size, not the candidate sets.
"""

import time

import pytest

from repro.bench import format_table, mean
from repro.datasets import generate_query_groups
from repro.engine.prune import PruningContext, prune_downward, prune_upward
from repro.engine.prime import compute_prime_subtree
from repro.query import candidate_nodes

from .conftest import emit_report

SIZES = (5, 7, 9, 11, 13)


@pytest.fixture(scope="module")
def query_groups(arxiv_suite, arxiv_dataset):
    return generate_query_groups(
        arxiv_dataset.graph,
        sizes=SIZES,
        queries_per_size=4,
        small_range=(2, 50),
        large_range=(51, 5000),
        seed=13,
        engine=arxiv_suite.gtea,
    )


def _gtea_pruning_seconds(suite, query) -> float:
    graph = suite.graph
    context = PruningContext(graph, query, suite.gtea.reachability)
    mats = {u: candidate_nodes(graph, query, u) for u in query.nodes}
    started = time.perf_counter()
    mats = prune_downward(context, mats)
    prime = compute_prime_subtree(query, mats)
    prune_upward(context, mats, prime)
    return time.perf_counter() - started


def _prefilter_seconds(suite, query) -> float:
    evaluator = suite.twigstackd
    mats = {u: candidate_nodes(suite.graph, query, u) for u in query.nodes}
    started = time.perf_counter()
    evaluator.prefilter(query, mats)
    return time.perf_counter() - started


def test_fig9d_report(arxiv_suite, query_groups, benchmark):
    rows = []

    def run():
        rows.clear()
        for group in ("small", "large"):
            for size in SIZES:
                queries = query_groups[group][size]
                if not queries:
                    continue
                gtea_ms = mean([
                    _gtea_pruning_seconds(arxiv_suite, g.query) * 1e3
                    for g in queries
                ])
                prefilter_ms = mean([
                    _prefilter_seconds(arxiv_suite, g.query) * 1e3
                    for g in queries
                ])
                rows.append([group, size, gtea_ms, prefilter_ms])

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report("fig9d_pruning_cost", format_table(
        "Fig. 9(d): filtering time (ms) — GTEA pruning vs TwigStackD pre-filter",
        ["group", "query size", "GTEA pruning", "TwigStackD pre-filter"],
        rows,
    ))
    # Shape: pruning beats the pre-filter on aggregate.
    assert sum(r[2] for r in rows) < sum(r[3] for r in rows)


def test_fig9d_pruning_single(arxiv_suite, query_groups, benchmark):
    pool = [q for size in SIZES for q in query_groups["small"][size]]
    query = pool[0].query
    benchmark.pedantic(
        lambda: _gtea_pruning_seconds(arxiv_suite, query),
        rounds=3, iterations=1,
    )


def test_fig9d_prefilter_single(arxiv_suite, query_groups, benchmark):
    pool = [q for size in SIZES for q in query_groups["small"][size]]
    query = pool[0].query
    benchmark.pedantic(
        lambda: _prefilter_seconds(arxiv_suite, query),
        rounds=3, iterations=1,
    )
