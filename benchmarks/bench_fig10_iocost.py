"""Fig. 10 (Appendix C.1) — I/O cost of processing Q3 on mid-scale XMark.

Three metrics per algorithm: data nodes accessed (#input), index elements
looked up (#index), and intermediate-result size (#intermediate, where
graph-shaped intermediates cost 2·(nodes+edges) and tuples cost their
count).  Expected shape:

* TwigStack/Twig2Stack read the fewest data nodes (one scan) but create
  intermediate tuples orders of magnitude above GTEA;
* TwigStackD reads far more input (two whole-graph traversals);
* GTEA's #intermediate is the smallest of all.
"""

from repro.bench import format_table
from repro.datasets import fig7_query

from .conftest import emit_report

ALGORITHMS = ["GTEA", "HGJoin+", "TwigStackD", "TwigStack", "Twig2Stack"]


def _pick_query(suite):
    """Q3 with label groups that yield a nonempty answer at this scale
    (the I/O metrics are only meaningful when work actually happens);
    falls back to Q2, then Q1."""
    for variant in ("q3", "q2", "q1"):
        for person_group in range(10):
            for item_group in (person_group, (person_group + 4) % 10):
                query = fig7_query(
                    variant,
                    person_group=person_group,
                    item_group=item_group,
                    seller_group=(person_group + 7) % 10,
                )
                if suite.gtea.evaluate(query):
                    return query
    return fig7_query("q1", person_group=0)


def test_fig10_report(xmark_mid, benchmark):
    rows = []
    query = _pick_query(xmark_mid)

    def run():
        rows.clear()
        reference = None
        for name in ALGORITHMS:
            measurement = xmark_mid.run(name, query)
            stats = measurement.stats
            if reference is None:
                reference = measurement.answer
            else:
                assert measurement.answer == reference
            rows.append([
                name,
                stats.input_nodes,
                stats.index_entries,
                stats.intermediate_cost,
            ])

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report("fig10_iocost", format_table(
        "Fig. 10: I/O cost for Q3 on mid-scale XMark-like data",
        ["algorithm", "#input", "#index", "#intermediate"],
        rows,
    ))
    metrics = {row[0]: row for row in rows}
    # TwigStackD reads the most data nodes (two graph traversals).
    assert metrics["TwigStackD"][1] == max(row[1] for row in rows)
    # GTEA's intermediates are real but no larger than any tuple-based
    # algorithm's (the paper reports a 4-orders gap at its scale).
    assert metrics["GTEA"][3] > 0
    assert metrics["GTEA"][3] <= metrics["HGJoin+"][3]
    assert metrics["GTEA"][3] <= metrics["TwigStack"][3]
    # TwigStackD's SSPI lookups are counted (nonzero #index).
    assert metrics["TwigStackD"][2] > 0
