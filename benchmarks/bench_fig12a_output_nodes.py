"""Fig. 12(a) + Tables 3/5 (Exp-1) — GTEA vs the number of output nodes.

Q4–Q8 share the Fig. 11 tree but declare different output-node sets
(Table 3).  GTEA's prime-subtree machinery means fewer output nodes →
smaller shrunk prime subtree → less enumeration work; the baselines are
insensitive to the output set (the paper only plots GTEA here).
"""

import pytest

from repro.bench import format_table
from repro.datasets import TABLE3_OUTPUTS, exp1_query

from .conftest import emit_report

NAMES = ["Q4", "Q5", "Q6", "Q7", "Q8"]
# Label groups chosen so the Fig. 11 pattern has matches at this scale
# (probed; the paper's Table 5 counts similarly presuppose nonempty
# answers on the scale-4 dataset).
GROUPS = dict(person_group=0, seller_group=0, item_group=2)


def test_fig12a_report(xmark_large, benchmark):
    rows = []

    def run():
        rows.clear()
        for name in NAMES:
            query = exp1_query(name, **GROUPS)
            measurement = xmark_large.run("GTEA", query)
            outputs = TABLE3_OUTPUTS[name]
            rows.append([
                name,
                len(outputs) if outputs else len(query.nodes),
                measurement.millis,
                measurement.result_count,
            ])

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report("fig12a_output_nodes", format_table(
        "Fig. 12(a) / Tables 3+5: GTEA time vs output nodes (Exp-1)",
        ["query", "#outputs", "GTEA ms", "results (Table 5)"],
        rows,
    ))
    by_name = {row[0]: row for row in rows}
    # Shape: Q8 (all outputs) does at least as much work as Q4 (single
    # output); fewer outputs generally mean less processing time.
    assert by_name["Q4"][2] <= by_name["Q8"][2] * 1.5
    # Result counts grow with the output set (projection keeps fewer
    # columns -> fewer distinct tuples), and answers are nonempty.
    assert 0 < by_name["Q4"][3] <= by_name["Q8"][3]


@pytest.mark.parametrize("name", NAMES)
def test_fig12a_gtea(xmark_large, name, benchmark):
    query = exp1_query(name, **GROUPS)
    benchmark.pedantic(
        lambda: xmark_large.run("GTEA", query), rounds=3, iterations=1
    )
