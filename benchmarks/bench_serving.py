"""Serving tier: throughput/latency of the worker pool + warm restarts.

Two experiments:

* **Throughput** — a :class:`repro.serve.QueryServer` pool over one warm
  store takes a burst of concurrent Fig. 7 requests; reported as qps and
  p50/p99 latency (the ROADMAP's "heavy traffic" metrics).
* **Warm restart** — the cross-process race of
  ``python -m repro.store.restart``: a cold process populates the store,
  a second process rehydrates from it; the warm process must reach its
  first answer ``FLOOR``× faster *and* answer byte-identically (digest
  comparison — the store can make things slower, never wrong).

Results land in ``benchmarks/reports/serving.json`` (machine-readable,
schema documented in docs/BENCHMARKS.md) and as tables on stdout.  The
JSON embeds a ``cost_profile`` snapshot so future sessions can seed
calibration from this report (``QuerySession.seed_cost_profile``).
"""

import asyncio
import json
import os
import pathlib
import subprocess
import sys
import time

from repro.bench import format_table
from repro.serve import QueryServer
from repro.store.restart import fig7_workload

from .conftest import emit_report

REPORT_DIR = pathlib.Path(__file__).parent / "reports"
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"

#: warm-restart first-answer speedup floor: relaxed on shared CI runners.
FLOOR = 2.0 if os.environ.get("CI") else 3.0
SCALE = 0.05
WORKERS = 4
REQUESTS = 96


def _restart_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def run_restart(store: str | None, *, persist: bool = False) -> dict:
    """One process of the warm-restart race; returns its JSON report."""
    command = [sys.executable, "-m", "repro.store.restart", "--scale", str(SCALE), "--codegen"]
    if store is not None:
        command += ["--store", store]
    if persist:
        command += ["--persist"]
    output = subprocess.run(command, env=_restart_env(), capture_output=True, text=True, check=True)
    return json.loads(output.stdout)


async def _drive_server(server: QueryServer, queries, requests: int) -> float:
    """Fire ``requests`` concurrent submissions; returns wall seconds."""
    started = time.perf_counter()
    await asyncio.gather(*[server.submit(queries[i % len(queries)]) for i in range(requests)])
    return time.perf_counter() - started


def measure_serving(store_root: str) -> dict:
    """Throughput/latency of a warmed worker pool on the Fig. 7 burst."""
    from repro.datasets import generate_xmark

    graph = generate_xmark(scale=SCALE, seed=42).graph
    queries = fig7_workload()

    async def run() -> dict:
        server = QueryServer(graph, workers=WORKERS, store=store_root, codegen="auto")
        await server.start()
        # One serial warmup round per query so the burst measures serving,
        # not first-compilation.
        for query in queries:
            await server.submit(query)
        server.stats.latencies.clear()
        server.stats.requests = 0
        wall = await _drive_server(server, queries, REQUESTS)
        summary = server.stats.summary()
        server.persist()
        profile = server._sessions[0].cost_profile.export_state()
        await server.stop()
        return {
            "workers": WORKERS,
            "requests": summary["requests"],
            "wall_seconds": round(wall, 6),
            "qps": round(summary["requests"] / wall, 1),
            "p50_ms": summary["p50_ms"],
            "p99_ms": summary["p99_ms"],
            "errors": summary["errors"],
            "cost_profile": profile,
        }

    return asyncio.run(run())


def test_serving_report(tmp_path_factory):
    store_root = str(tmp_path_factory.mktemp("serving-store"))

    # Cross-process warm restart race: cold populates, warm rehydrates.
    cold = run_restart(store_root, persist=True)
    warm = run_restart(store_root)
    speedup = cold["first_answer_seconds"] / warm["first_answer_seconds"]

    assert warm["answer_digests"] == cold["answer_digests"], (
        "a warm restart must answer byte-identically to the cold build"
    )
    assert sum(warm["rehydrated"].values()) > 0, "nothing rehydrated from the store"

    serving = measure_serving(store_root)
    assert serving["errors"] == 0

    payload = {
        "scale": SCALE,
        "floor": FLOOR,
        "serving": {k: v for k, v in serving.items() if k != "cost_profile"},
        "warm_restart": {
            "cold_first_answer_seconds": cold["first_answer_seconds"],
            "warm_first_answer_seconds": warm["first_answer_seconds"],
            "speedup": round(speedup, 2),
            "rehydrated": warm["rehydrated"],
        },
        "cost_profile": serving["cost_profile"],
    }

    columns = [
        "workers",
        "requests",
        "qps",
        "p50_ms",
        "p99_ms",
        "cold_first_ms",
        "warm_first_ms",
        "restart_speedup",
    ]
    row = [
        serving["workers"],
        serving["requests"],
        serving["qps"],
        serving["p50_ms"],
        serving["p99_ms"],
        round(cold["first_answer_seconds"] * 1000, 1),
        round(warm["first_answer_seconds"] * 1000, 1),
        round(speedup, 2),
    ]
    emit_report(
        "serving",
        format_table(
            f"Serving tier ({WORKERS} workers, Fig. 7 burst, XMark scale {SCALE}; "
            f"warm restart {speedup:.2f}x)",
            columns,
            [row],
        ),
    )
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / "serving.json").write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert speedup >= FLOOR, (
        f"warm-restart first-answer speedup {speedup:.2f}x is below the "
        f"{FLOOR:.1f}x floor"
    )
