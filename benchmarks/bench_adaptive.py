"""Adaptive prune reordering: runtime sizes beat compile-time estimates.

The skewed workload of ``repro.datasets.skewed_workload`` is built so
label statistics mislead the planner: a heavy-label child is actually
empty, an unpinned-attribute child is actually tiny.  Every query runs
through the same compiled plans twice — the static operator pipeline
(compile-time prune order) and the adaptive one (remaining obligations
re-sorted by actual post-prune set sizes, with the backbone-empty early
exit) — and the headline metric is ``downward_prune_ops`` actually
executed.  Answers are asserted identical.

Acceptance bar: the adaptive executor must cut prune ops by >= 10% on
this workload and change the executed order on at least one query.

Results land in ``benchmarks/reports/adaptive.json`` (machine-readable)
and as a table on stdout.
"""

import json
import pathlib

from repro.bench import format_table, measure_adaptive
from repro.datasets import skewed_workload

from .conftest import emit_report

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

#: workload scale sweep — queries triple with ``repeats``.
SCALES = ((4, 8), (8, 12))
SEED = 31


def test_adaptive_reordering_report():
    rows = []
    payload = {"seed": SEED, "scales": {}}
    for scale, repeats in SCALES:
        graph, queries = skewed_workload(scale=scale, repeats=repeats, seed=SEED)
        measurement = measure_adaptive(graph, queries)
        assert measurement.mismatches == 0
        row = measurement.row()
        rows.append([f"{scale}x{repeats}", *row.values()])
        payload["scales"][f"{scale}x{repeats}"] = {
            "graph_nodes": graph.num_nodes,
            **row,
        }
        # Acceptance bar: >= 10% prune-op reduction, and the runtime
        # order must actually differ from the compile-time order.
        assert measurement.prune_ops_saved >= 0.10
        assert measurement.reordered_queries >= 1
        assert measurement.early_exits >= 1

    emit_report(
        "adaptive",
        format_table(
            "Adaptive prune reordering vs static plan order (skewed workload)",
            [
                "scale", "queries", "ops_static", "ops_adaptive", "ops_saved",
                "reordered", "early_exits", "static_ms", "adaptive_ms",
            ],
            rows,
        ),
    )
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / "adaptive.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
