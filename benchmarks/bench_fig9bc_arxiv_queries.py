"""Figs. 9(b) and 9(c) — arXiv query time, small- and large-result groups.

Per query size 5–13 the paper reports average processing time of GTEA,
HGJoin*, HGJoin+ and TwigStackD.  Expected shape: GTEA fastest by a wide
margin and most robust; TwigStackD no longer competitive on this
denser/deeper graph (Section 5.2) and fluctuating on the large-result
group; HGJoin* beats HGJoin+ as results grow.
"""

import pytest

from repro.bench import format_table, mean
from repro.datasets import generate_query_groups

from .conftest import emit_report

SIZES = (5, 7, 9, 11, 13)
ALGORITHMS = ["GTEA", "HGJoin*", "HGJoin+", "TwigStackD"]


@pytest.fixture(scope="module")
def query_groups(arxiv_suite, arxiv_dataset):
    return generate_query_groups(
        arxiv_dataset.graph,
        sizes=SIZES,
        queries_per_size=4,
        small_range=(2, 50),
        large_range=(51, 5000),
        seed=13,
        engine=arxiv_suite.gtea,
    )


def _report(figure: str, group: str, suite, query_groups) -> list[list]:
    rows = []
    for size in SIZES:
        queries = query_groups[group][size]
        if not queries:
            continue
        row: list = [size, len(queries)]
        reference = [suite.gtea.evaluate(g.query) for g in queries]
        for name in ALGORITHMS:
            times = []
            for position, generated in enumerate(queries):
                measurement = suite.run(name, generated.query)
                assert measurement.answer == reference[position], (
                    f"{name} wrong on size-{size} query {position}"
                )
                times.append(measurement.millis)
            row.append(mean(times))
        rows.append(row)
    return rows


def test_fig9b_small_results(arxiv_suite, query_groups, benchmark):
    rows = []

    def run():
        rows.clear()
        rows.extend(_report("9b", "small", arxiv_suite, query_groups))

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report("fig9b_arxiv_small", format_table(
        "Fig. 9(b): arXiv query time (ms), small-result group",
        ["query size", "#queries", *ALGORITHMS],
        rows,
    ))
    assert rows, "query generator produced no small-result queries"
    # Shape: GTEA dominates TwigStackD at every size on this denser,
    # deeper graph (the paper's Section 5.2 headline; HGJoin's relative
    # standing at pure-Python scale is discussed in EXPERIMENTS.md).
    algo_index = {name: i + 2 for i, name in enumerate(ALGORITHMS)}
    for row in rows:
        assert row[algo_index["GTEA"]] < row[algo_index["TwigStackD"]]


def test_fig9c_large_results(arxiv_suite, query_groups, benchmark):
    rows = []

    def run():
        rows.clear()
        rows.extend(_report("9c", "large", arxiv_suite, query_groups))

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report("fig9c_arxiv_large", format_table(
        "Fig. 9(c): arXiv query time (ms), large-result group",
        ["query size", "#queries", *ALGORITHMS],
        rows,
    ))
    assert rows, "query generator produced no large-result queries"
    total = {name: 0.0 for name in ALGORITHMS}
    for row in rows:
        for name, value in zip(ALGORITHMS, row[2:]):
            total[name] += value
    assert total["GTEA"] < total["TwigStackD"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig9_single_query(arxiv_suite, query_groups, algorithm, benchmark):
    pool = [q for size in SIZES for q in query_groups["small"][size]]
    if not pool:  # pragma: no cover - generator always fills small group
        pytest.skip("no generated queries")
    query = pool[0].query
    benchmark.pedantic(
        lambda: arxiv_suite.run(algorithm, query), rounds=3, iterations=1
    )
