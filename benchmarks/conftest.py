"""Shared session fixtures for the benchmark suite.

Dataset generation and index construction happen once per session; the
benchmarks measure query processing only, as the paper does.

Scale note (see DESIGN.md substitutions): the paper sweeps XMark scaling
factors 0.5–4 with C++-era implementations; this pure-Python benchmark
sweeps the same 1:2:3:4:8 ladder at smaller absolute sizes.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import AlgorithmSuite
from repro.datasets import generate_arxiv, generate_xmark

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker.

    The default addopts deselect ``bench``-marked tests; run the suite
    explicitly with ``pytest benchmarks -m bench``.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


def emit_report(name: str, text: str) -> None:
    """Print a paper-style table and persist it under benchmarks/reports/."""
    print()
    print(text)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")

#: the 1 : 2 : 3 : 4 : 8 scaling ladder of the paper's Table 1.
XMARK_SCALES = (0.025, 0.05, 0.075, 0.1, 0.2)


def _cross_children_of(query):
    """Reference children present in a Fig. 7 / Fig. 11 query.

    Ref targets: ``person``/``person2`` everywhere, ``item`` in Fig. 7
    naming (its parent is the ``item_ref`` element) and ``item_elem`` in
    Fig. 11 naming (where ``item`` *is* the ref element).
    """
    crosses = set()
    if "person" in query.parent:
        crosses.add("person")
    if "person2" in query.parent:
        crosses.add("person2")
    if "item_elem" in query.parent:
        crosses.add("item_elem")
    if query.parent.get("item") == "item_ref":
        crosses.add("item")
    return crosses


@pytest.fixture(scope="session")
def xmark_datasets():
    """XMark-like graphs for every scale on the ladder."""
    return {
        scale: generate_xmark(scale=scale, seed=97) for scale in XMARK_SCALES
    }


@pytest.fixture(scope="session")
def xmark_suites(xmark_datasets):
    """Algorithm suites (indexes pre-built) per XMark scale."""
    return {
        scale: AlgorithmSuite(
            dataset.graph,
            forest_edges=dataset.forest_edges,
            cross_children_of=_cross_children_of,
        )
        for scale, dataset in xmark_datasets.items()
    }


@pytest.fixture(scope="session")
def xmark_small(xmark_suites):
    return xmark_suites[XMARK_SCALES[0]]


@pytest.fixture(scope="session")
def xmark_mid(xmark_suites):
    return xmark_suites[XMARK_SCALES[2]]


@pytest.fixture(scope="session")
def xmark_large(xmark_suites):
    return xmark_suites[XMARK_SCALES[-1]]


@pytest.fixture(scope="session")
def arxiv_dataset():
    """The arXiv-like graph at reduced scale (full stats are tested in
    tests/; benchmarks use a size that keeps the whole suite fast)."""
    return generate_arxiv(
        num_papers=2400,
        num_authors=470,
        num_paper_labels=300,
        num_author_labels=40,
        seed=97,
    )


@pytest.fixture(scope="session")
def arxiv_suite(arxiv_dataset):
    return AlgorithmSuite(arxiv_dataset.graph)
