"""Fig. 8(b) — query processing time for Q1/Q2/Q3 on the smallest dataset.

Expected shape (paper Section 5.1): GTEA's time barely grows with query
size (and Q2 can run *faster* than Q1 because its answer is smaller);
HGJoin+ is the most sensitive to query size.
"""

import pytest

from repro.bench import format_table
from repro.datasets import fig7_query

from .conftest import emit_report

ALGORITHMS = ["GTEA", "TwigStackD", "HGJoin+", "HGJoin*", "TwigStack", "Twig2Stack"]
VARIANTS = ("q1", "q2", "q3")


def _query(variant):
    return fig7_query(variant, person_group=2, item_group=4, seller_group=6)


def test_fig8b_report(xmark_small, benchmark):
    table: dict[str, list[float]] = {name: [] for name in ALGORITHMS}

    def run_all():
        for name in ALGORITHMS:
            table[name].clear()
        for variant in VARIANTS:
            query = _query(variant)
            reference = None
            for name in ALGORITHMS:
                measurement = xmark_small.run(name, query)
                table[name].append(measurement.millis)
                if reference is None:
                    reference = measurement.answer
                else:
                    assert measurement.answer == reference

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, *table[name]] for name in ALGORITHMS]
    emit_report("fig8b_query_scaling", format_table(
        "Fig. 8(b): query processing time (ms) for Q1/Q2/Q3, smallest scale",
        ["algorithm", *(v.upper() for v in VARIANTS)],
        rows,
    ))
    # Shape: GTEA stays in a narrow band across Q1-Q3 and beats the
    # stack/pool-based algorithms on every variant.
    gtea = table["GTEA"]
    assert max(gtea) < max(table["TwigStackD"])
    assert max(gtea) < max(table["TwigStack"])
    assert max(gtea) / min(gtea) < 5  # flat across query sizes


@pytest.mark.parametrize("variant", VARIANTS)
def test_fig8b_gtea(xmark_small, variant, benchmark):
    query = _query(variant)
    benchmark.pedantic(
        lambda: xmark_small.run("GTEA", query), rounds=5, iterations=1
    )


@pytest.mark.parametrize("variant", VARIANTS)
def test_fig8b_twigstackd(xmark_small, variant, benchmark):
    query = _query(variant)
    benchmark.pedantic(
        lambda: xmark_small.run("TwigStackD", query), rounds=3, iterations=1
    )
