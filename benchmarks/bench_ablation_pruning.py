"""Ablation — the design choices behind GTEA's pruning (DESIGN.md).

Three levels of the downward-pruning machinery on the same workload:

1. **shared contours** (GTEA as shipped): merged per-set contours with
   chain-shared index scans (Procedure 6);
2. **per-candidate contours**: Proposition 7 checks without the shared
   chain scan (every candidate walks its own chain region);
3. **pairwise probes**: no contours at all — each candidate probes the
   3-hop index against each child candidate until a witness is found
   (what a naive use of the index would do, and roughly what the paper's
   ``|mat(uA)| x |mat(uB)|`` strawman in Section 4.1 describes).

Expected shape: 1 ≤ 2 ≤ 3, with the gap growing with candidate-set size —
this quantifies the paper's claim that contour merging is what makes
index-based pruning viable.
"""

from repro.bench import format_table, mean
from repro.datasets import fig7_query
from repro.engine.prune import PruningContext
from repro.query import EdgeType, candidate_nodes
from repro.logic import evaluate
from repro.reachability.contour import merge_pred_lists, node_reaches_contour

import time

from .conftest import emit_report


def _downward_shared(suite, query):
    """Level 1: the engine's own prune_downward."""
    from repro.engine.prune import prune_downward

    context = PruningContext(suite.graph, query, suite.gtea.reachability)
    mats = {u: candidate_nodes(suite.graph, query, u) for u in query.nodes}
    return prune_downward(context, mats)


def _downward_per_candidate(suite, query):
    """Level 2: contours, but one full Proposition-7 walk per candidate."""
    context = PruningContext(suite.graph, query, suite.gtea.reachability)
    graph, reach, index = suite.graph, suite.gtea.reachability, context.index
    mats = {u: candidate_nodes(graph, query, u) for u in query.nodes}
    refined = {}
    for node_id in query.bottom_up():
        candidates = mats[node_id]
        children = query.children[node_id]
        if not children:
            refined[node_id] = list(candidates)
            continue
        contours = {
            c: merge_pred_lists(index, context.dag_images(refined[c]))
            for c in children
            if query.edge_type(c) is EdgeType.DESCENDANT
        }
        pc_parents = {
            c: {p for w in refined[c] for p in graph.predecessors(w)}
            for c in children
            if query.edge_type(c) is EdgeType.CHILD
        }
        child_sets = {
            c: set(context.dag_images(refined[c])) for c in contours
        }
        fext = query.fext(node_id)
        survivors = []
        for candidate in candidates:
            component = reach.component_of(candidate)
            valuation = {}
            for c, contour in contours.items():
                hit = node_reaches_contour(index, component, contour)
                if not hit and reach.is_cyclic_component(component):
                    hit = component in child_sets[c]
                valuation[c] = hit
            for c, parents in pc_parents.items():
                valuation[c] = candidate in parents
            if evaluate(fext, valuation, default=False):
                survivors.append(candidate)
        refined[node_id] = survivors
    return refined


def _downward_pairwise(suite, query):
    """Level 3: per-pair index probes, no contours."""
    context = PruningContext(suite.graph, query, suite.gtea.reachability)
    graph, reach = suite.graph, suite.gtea.reachability
    mats = {u: candidate_nodes(graph, query, u) for u in query.nodes}
    refined = {}
    for node_id in query.bottom_up():
        candidates = mats[node_id]
        children = query.children[node_id]
        if not children:
            refined[node_id] = list(candidates)
            continue
        pc_parents = {
            c: {p for w in refined[c] for p in graph.predecessors(w)}
            for c in children
            if query.edge_type(c) is EdgeType.CHILD
        }
        fext = query.fext(node_id)
        survivors = []
        for candidate in candidates:
            valuation = {}
            for c in children:
                if c in pc_parents:
                    valuation[c] = candidate in pc_parents[c]
                else:
                    valuation[c] = any(
                        reach.reaches(candidate, w) for w in refined[c]
                    )
            if evaluate(fext, valuation, default=False):
                survivors.append(candidate)
        refined[node_id] = survivors
    return refined


LEVELS = [
    ("shared contours", _downward_shared),
    ("per-candidate contours", _downward_per_candidate),
    ("pairwise probes", _downward_pairwise),
]


def test_ablation_report(xmark_large, benchmark):
    query = fig7_query("q1", person_group=2, item_group=4, seller_group=6)
    rows = []

    def run():
        rows.clear()
        reference = None
        for name, fn in LEVELS:
            times = []
            for __ in range(3):
                started = time.perf_counter()
                result = fn(xmark_large, query)
                times.append((time.perf_counter() - started) * 1e3)
            survivor_sets = {u: set(v) for u, v in result.items()}
            if reference is None:
                reference = survivor_sets
            else:
                assert survivor_sets == reference, f"{name} prunes differently"
            rows.append([name, mean(times)])

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report("ablation_pruning", format_table(
        "Ablation: downward pruning strategies on Q1, largest scale (ms)",
        ["strategy", "time"],
        rows,
    ))
    # All three agree on the pruned sets; shared contours must not lose
    # to pairwise probing.
    by_name = {row[0]: row[1] for row in rows}
    assert by_name["shared contours"] <= by_name["pairwise probes"] * 1.2


def test_ablation_shared(xmark_large, benchmark):
    query = fig7_query("q1", person_group=2, item_group=4, seller_group=6)
    benchmark.pedantic(
        lambda: _downward_shared(xmark_large, query), rounds=3, iterations=1
    )


def test_ablation_pairwise(xmark_large, benchmark):
    query = fig7_query("q1", person_group=2, item_group=4, seller_group=6)
    benchmark.pedantic(
        lambda: _downward_pairwise(xmark_large, query), rounds=3, iterations=1
    )
