"""Fig. 9(a) — result-size distribution of the generated arXiv queries.

The paper's query generator produces, per query size 5–13, fifteen
queries in a small-result group and fifteen in a large-result group, and
plots their result sizes.  This bench regenerates the two groups and
reports the distribution summary (min/mean/max per size).
"""

from repro.bench import format_table, mean
from repro.datasets import generate_query_groups

from .conftest import emit_report

SIZES = (5, 7, 9, 11, 13)
PER_SIZE = 5  # the paper uses 15; 5 keeps the bench fast with same shape
SMALL = (2, 50)
LARGE = (51, 5000)


def test_fig9a_report(arxiv_suite, arxiv_dataset, benchmark):
    groups = {}

    def generate():
        groups.update(generate_query_groups(
            arxiv_dataset.graph,
            sizes=SIZES,
            queries_per_size=PER_SIZE,
            small_range=SMALL,
            large_range=LARGE,
            seed=31,
            engine=arxiv_suite.gtea,
        ))

    benchmark.pedantic(generate, rounds=1, iterations=1)
    rows = []
    for group_name in ("small", "large"):
        for size in SIZES:
            sizes = [g.result_size for g in groups[group_name][size]]
            rows.append([
                group_name, size, len(sizes),
                min(sizes) if sizes else 0,
                mean([float(s) for s in sizes]),
                max(sizes) if sizes else 0,
            ])
    emit_report("fig9a_result_distribution", format_table(
        "Fig. 9(a): result sizes of generated arXiv queries",
        ["group", "query size", "#queries", "min", "mean", "max"],
        rows,
    ))
    # Shape: the small group stays within its band; at least some sizes of
    # the large group are populated and dominate the small ones.
    small_rows = [r for r in rows if r[0] == "small" and r[2] > 0]
    large_rows = [r for r in rows if r[0] == "large" and r[2] > 0]
    assert small_rows and large_rows
    for row in small_rows:
        assert SMALL[0] <= row[3] and row[5] <= SMALL[1]
    assert max(r[5] for r in large_rows) > SMALL[1]
