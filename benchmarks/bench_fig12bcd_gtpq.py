"""Figs. 12(b), 12(c), 12(d) (Exp-2) — GTPQs with disjunction and negation.

Table 4's ten queries on the Fig. 11 structure, evaluated by GTEA
(native logical-operator support) against TwigStack and TwigStackD, which
must decompose each GTPQ into conjunctive variants and merge/difference
the answers (Appendix C.2).  Expected shape: GTEA several times to orders
of magnitude faster, with the gap widening as predicates get more complex
(DIS_NEG4 decomposes into many variants plus anti-joins).
"""

import pytest

from repro.bench import format_table
from repro.datasets import exp2_query

from .conftest import emit_report

# Groups probed to make the conjunctive Fig. 11 base nonempty at this
# scale, so the logical variants have substance to filter.
GROUPS = dict(person_group=0, seller_group=3, item_group=3)
ALGORITHMS = ["GTEA", "TwigStack", "TwigStackD"]
FAMILIES = {
    "fig12b_disjunction": ["DIS1", "DIS2", "DIS3"],
    "fig12c_negation": ["NEG1", "NEG2", "NEG3"],
    "fig12d_dis_neg": ["DIS_NEG1", "DIS_NEG2", "DIS_NEG3", "DIS_NEG4"],
}


def _family_report(suite, names) -> list[list]:
    rows = []
    for name in names:
        query = exp2_query(name, **GROUPS)
        row: list = [name]
        reference = None
        counts = None
        for algorithm in ALGORITHMS:
            measurement = suite.run(algorithm, query)
            if reference is None:
                reference = measurement.answer
                counts = measurement.result_count
            else:
                assert measurement.answer == reference, (
                    f"{algorithm} disagrees on {name}"
                )
            row.append(measurement.millis)
        row.append(counts)
        rows.append(row)
    return rows


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_fig12_family_report(xmark_mid, family, benchmark):
    rows = []

    def run():
        rows.clear()
        rows.extend(_family_report(xmark_mid, FAMILIES[family]))

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(family, format_table(
        f"Fig. 12 ({family}): GTPQ processing time (ms), mid-scale XMark",
        ["query", *ALGORITHMS, "results"],
        rows,
    ))
    # Shape: GTEA is fastest on every query of the family.
    for row in rows:
        gtea, others = row[1], row[2:-1]
        assert gtea <= min(others), f"GTEA not fastest on {row[0]}"


@pytest.mark.parametrize(
    "name", ["DIS1", "NEG2", "DIS_NEG2", "DIS_NEG4"]
)
def test_fig12_gtea_single(xmark_mid, name, benchmark):
    query = exp2_query(name, **GROUPS)
    benchmark.pedantic(
        lambda: xmark_mid.run("GTEA", query), rounds=3, iterations=1
    )


@pytest.mark.parametrize("name", ["DIS1", "NEG2"])
def test_fig12_twigstackd_single(xmark_mid, name, benchmark):
    query = exp2_query(name, **GROUPS)
    benchmark.pedantic(
        lambda: xmark_mid.run("TwigStackD", query), rounds=3, iterations=1
    )
