"""Session-layer caching: warm-vs-cold throughput on repeated traffic.

The ROADMAP's serving scenario: the same (or overlapping) queries arrive
over and over against one graph.  A cold path — no plan, candidate, or
result reuse — pays full evaluation every time; a warm
:class:`repro.engine.QuerySession` answers repeats from its caches.  The
report shows where the speedup comes from via the cache hit counters
surfaced in :class:`repro.engine.EvaluationStats`.
"""

from repro.bench import format_table, measure_warm_cold
from repro.datasets import fig7_query
from repro.engine import QuerySession

from .conftest import emit_report

#: repetitions of the Fig. 7 query triple in the workload.
REPEATS = 5


def _workload():
    variants = [
        fig7_query("q1", person_group=2, item_group=4, seller_group=6),
        fig7_query("q2", person_group=2, item_group=4, seller_group=6),
        fig7_query("q3", person_group=2, item_group=4, seller_group=6),
    ]
    return [variants[i % len(variants)] for i in range(REPEATS * len(variants))]


def test_session_cache_report(xmark_datasets, benchmark):
    graph = xmark_datasets[0.05].graph
    workload = _workload()
    holder = {}

    def run():
        holder["measurement"] = measure_warm_cold(graph, workload)

    benchmark.pedantic(run, rounds=1, iterations=1)
    measurement = holder["measurement"]
    row = measurement.row()
    emit_report("session_cache", format_table(
        f"QuerySession warm vs cold ({len(workload)} queries, XMark scale 0.05)",
        list(row),
        [list(row.values())],
    ))
    # The acceptance bar: repeated traffic must be at least 2x faster warm.
    assert measurement.speedup >= 2.0, row
    assert measurement.stats.result_cache_hits > 0
    assert measurement.stats.batch_unique_queries < measurement.stats.batch_queries


def test_candidate_cache_shares_overlapping_predicates(xmark_datasets):
    """Distinct queries with overlapping node predicates share mat(u)."""
    graph = xmark_datasets[0.05].graph
    session = QuerySession(graph, result_cache_size=0)
    q1 = fig7_query("q1", person_group=2, item_group=4, seller_group=6)
    q2 = fig7_query("q2", person_group=2, item_group=4, seller_group=6)
    _, cold = session.evaluate_with_stats(q1)
    assert cold.candidate_cache_hits == 0
    _, warm = session.evaluate_with_stats(q2)
    # Q2 extends Q1, so every Q1 predicate is fetched from the cache.
    assert warm.candidate_cache_hits >= cold.candidate_cache_misses - 1
