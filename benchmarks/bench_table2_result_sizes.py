"""Table 2 — average result sizes of Q1–Q3 on the XMark ladder.

The paper draws ten random person/item label groups per query type and
reports the average answer size per dataset scale.  Expected shape:
|Q1| >> |Q2| >> |Q3| (368 / 34.6 / 1.9 on the 55MB dataset), growing with
scale.
"""

from repro.bench import format_table, mean
from repro.datasets import fig7_query

from .conftest import XMARK_SCALES, emit_report

GROUP_DRAWS = [(g, (g + 3) % 10, (g + 5) % 10) for g in range(10)]


def _average_sizes(suite, variant: str) -> float:
    sizes = []
    for person_group, item_group, seller_group in GROUP_DRAWS:
        query = fig7_query(
            variant,
            person_group=person_group,
            item_group=item_group,
            seller_group=seller_group,
        )
        sizes.append(len(suite.gtea.evaluate(query)))
    return mean(sizes)


def test_table2_report(xmark_suites, benchmark):
    rows = []

    def collect():
        rows.clear()
        for variant in ("q1", "q2", "q3"):
            row: list = [variant.upper()]
            for scale in XMARK_SCALES:
                row.append(_average_sizes(xmark_suites[scale], variant))
            rows.append(row)
        return rows

    benchmark.pedantic(collect, rounds=1, iterations=1)
    emit_report("table2_result_sizes", format_table(
        "Table 2: average result sizes on XMark-like data (10 label draws)",
        ["query", *(f"scale {s}" for s in XMARK_SCALES)],
        rows,
    ))
    # Shape: Q1 answers dominate Q2 dominate Q3 at every scale, and Q1
    # grows with data size (paper: 368 -> 2986 across the ladder).
    q1, q2, q3 = rows
    for column in range(1, len(XMARK_SCALES) + 1):
        assert q1[column] >= q2[column] >= q3[column]
    assert q1[-1] > q1[1]


def test_q1_average_evaluation(xmark_small, benchmark):
    benchmark.pedantic(
        lambda: _average_sizes(xmark_small, "q1"), rounds=3, iterations=1
    )
