"""Fig. 8(a) — query processing time for Q1 while scaling the data.

The paper's headline chart: GTEA vs TwigStackD vs HGJoin+ vs TwigStack vs
Twig2Stack across five dataset scales.  Expected shape: GTEA fastest and
flattest; HGJoin+ degrades worst; TwigStackD competitive on this
tree-like data (the paper explains why in Section 5.1).
"""

import pytest

from repro.bench import format_table
from repro.datasets import fig7_query

from .conftest import XMARK_SCALES, emit_report

QUERY = lambda: fig7_query("q1", person_group=2, item_group=4, seller_group=6)
ALGORITHMS = ["GTEA", "TwigStackD", "HGJoin+", "HGJoin*", "TwigStack", "Twig2Stack"]


def test_fig8a_report(xmark_suites, benchmark):
    table: dict[str, list[float]] = {name: [] for name in ALGORITHMS}
    reference: dict[float, set] = {}

    def run_all():
        for name in ALGORITHMS:
            table[name].clear()
        for scale in XMARK_SCALES:
            suite = xmark_suites[scale]
            for name in ALGORITHMS:
                measurement = suite.run(name, QUERY())
                table[name].append(measurement.millis)
                expected = reference.setdefault(scale, measurement.answer)
                assert measurement.answer == expected, (
                    f"{name} disagrees at scale {scale}"
                )

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, *table[name]] for name in ALGORITHMS]
    emit_report("fig8a_data_scaling", format_table(
        "Fig. 8(a): Q1 query processing time (ms) vs data scale",
        ["algorithm", *(f"scale {s}" for s in XMARK_SCALES)],
        rows,
    ))
    # Shape assertions (the claims that survive pure-Python constants —
    # see EXPERIMENTS.md for the HGJoin+ discussion): GTEA beats the
    # stack/pool-based algorithms at the largest scale.
    largest = {name: table[name][-1] for name in ALGORITHMS}
    assert largest["GTEA"] < largest["TwigStackD"]
    assert largest["GTEA"] < largest["TwigStack"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig8a_largest_scale(xmark_large, algorithm, benchmark):
    query = QUERY()
    benchmark.pedantic(
        lambda: xmark_large.run(algorithm, query), rounds=3, iterations=1
    )
