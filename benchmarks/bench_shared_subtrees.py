"""Shared-subtree batch evaluation: prune work saved vs per-query plans.

Synthetic workloads with a controlled fraction of subtree overlap
(``random_query_batch``'s graft probability) are evaluated twice on
fresh sessions: once through the shared-plan DAG of PR 3
(``evaluate_many(share=True)``) and once through the PR-2 per-query
compilation path (``share=False``).  The headline metric is
``downward_prune_ops`` — node-level Procedure-6 refinements actually
executed — plus wall time; answers are asserted identical.

Results land in ``benchmarks/reports/shared.json`` (machine-readable)
and as a table on stdout.
"""

import json
import pathlib
import random
import time

from repro.bench import format_table
from repro.datasets import random_labeled_graph, random_query_batch
from repro.engine import QuerySession

from .conftest import emit_report

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

#: graft probability sweep — 0% is the no-sharing control.
OVERLAPS = (0.0, 0.5, 0.8)
BATCH_SIZE = 24
GRAPH_NODES = 400
SEED = 23


def _workload(overlap: float):
    rng = random.Random(SEED)
    graph = random_labeled_graph(
        GRAPH_NODES, rng, labels="abcdef", edge_prob=2.2 / GRAPH_NODES, cycle_edges=6
    )
    batch = random_query_batch(
        graph, rng, batch_size=BATCH_SIZE, size_range=(3, 6), overlap=overlap
    )
    return graph, batch


def _measure(graph, batch, share: bool):
    session = QuerySession(graph, result_cache_size=0)
    started = time.perf_counter()
    outcome = session.evaluate_many(batch, share=share)
    elapsed_ms = 1e3 * (time.perf_counter() - started)
    return outcome, elapsed_ms


def test_shared_subtree_report():
    rows = []
    payload = {
        "batch_size": BATCH_SIZE,
        "graph_nodes": GRAPH_NODES,
        "seed": SEED,
        "overlaps": {},
    }
    for overlap in OVERLAPS:
        graph, batch = _workload(overlap)
        shared, shared_ms = _measure(graph, batch, share=True)
        isolated, isolated_ms = _measure(graph, batch, share=False)
        assert shared.results == isolated.results

        ops_shared = shared.stats.downward_prune_ops
        ops_isolated = isolated.stats.downward_prune_ops
        saved = 1.0 - ops_shared / ops_isolated if ops_isolated else 0.0
        speedup = isolated_ms / shared_ms if shared_ms else 0.0
        rows.append([
            f"{overlap:.0%}",
            len(batch),
            ops_isolated,
            ops_shared,
            shared.stats.batch_shared_subtrees,
            f"{saved:.0%}",
            round(isolated_ms, 2),
            round(shared_ms, 2),
            round(speedup, 2),
        ])
        payload["overlaps"][f"{overlap:.2f}"] = {
            "queries": len(batch),
            "prune_ops_per_query": ops_isolated,
            "prune_ops_shared": ops_shared,
            "shared_occurrences": shared.stats.batch_shared_subtrees,
            "prune_work_saved": saved,
            "per_query_ms": isolated_ms,
            "shared_ms": shared_ms,
            "speedup": speedup,
        }
        # Acceptance bar: >= 50% overlap must measurably cut prune work.
        if overlap >= 0.5:
            assert ops_shared < ops_isolated
            assert shared.stats.batch_shared_subtrees > 0

    emit_report("shared", format_table(
        f"Shared-subtree batch evaluation ({BATCH_SIZE} queries, "
        f"random graph n={GRAPH_NODES})",
        [
            "overlap", "queries", "ops_per_query", "ops_shared",
            "shared_occ", "saved", "per_query_ms", "shared_ms", "speedup",
        ],
        rows,
    ))
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / "shared.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
