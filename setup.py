"""Setuptools packaging for the GTPQ/GTEA reproduction (src/ layout)."""

import pathlib

from setuptools import find_packages, setup

README = pathlib.Path(__file__).parent / "README.md"

setup(
    name="repro-gtpq",
    version="1.0.0",
    description=(
        "Reproduction of 'Adding Logical Operators to Tree Pattern Queries "
        "on Graph-Structured Data' (Zeng, Jiang, Zhuge; VLDB 2012) with a "
        "query-session serving layer"
    ),
    long_description=README.read_text() if README.exists() else "",
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "numpy",
    ],
    extras_require={
        "bench": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-bench=repro.bench.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Database",
        "Topic :: Scientific/Engineering",
    ],
)
